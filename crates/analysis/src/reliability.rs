//! Monte-Carlo reliability engine: delivery-probability and
//! expected-slowdown curves under randomized node, directed-link and
//! correlated-burst faults.
//!
//! The paper's constructions guarantee *reconfigurability* under at most
//! `k` faults; this module measures what traffic actually experiences when
//! faults strike **mid-run** and the engine answers with adaptive
//! re-routing. For each probability `p` in a grid and each fault model, it
//! runs thousands of seeded trials on `B(2,h)`: a random permutation
//! workload injects at cycle 0, the drawn fault set fires at a fixed kill
//! cycle, and the run drains. Two curves come out, with 95% confidence
//! intervals:
//!
//! * **delivery probability** — packets delivered / injected, pooled over
//!   all trials of the point, with a Wilson score interval;
//! * **expected slowdown** — the per-trial ratio of faulted to healthy mean
//!   delivered latency (same workload, same engine), summarised as mean ±
//!   1.96·sd/√m over the trials that delivered anything.
//!
//! Determinism is load-bearing (the CI reliability-determinism job diffs
//! runs at different `--threads` and `--shards`): every trial derives its
//! seeds from the root seed and the *trial index* via SplitMix64, workers
//! process contiguous trial chunks, and results merge in trial order, so
//! the output is byte-identical for any thread count. The fault coins for
//! a trial are shared across the whole `p` grid (one coin per element,
//! compared against each `p`), so a trial's fault sets are *nested* as `p`
//! grows and the curves are monotone draw-by-draw, not just in
//! expectation.

use crate::report::TextTable;
use ftdb_core::LinkFaultSet;
use ftdb_graph::Embedding;
use ftdb_sim::congestion::{
    CongestionConfig, CongestionSim, EngineKind, FaultResponse, FlowControl, RouteSource,
    ShardedSim,
};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::workload;
use ftdb_topology::DeBruijn2;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which elements the Bernoulli coins kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultModel {
    /// Every processor dies independently with probability `p` (its
    /// incident links die with it — the degenerate all-incident-links
    /// case of the directed-link model).
    Node,
    /// Every directed link (CSR edge slot) dies independently with
    /// probability `p`.
    Link,
    /// Every aligned label-prefix ball of `2^radius_bits` nodes dies as a
    /// *burst* — all links incident to the ball — with probability `p`
    /// per ball: the spatially-correlated failure mode (a rack, a board)
    /// that independent link coins cannot express.
    Burst,
}

impl FaultModel {
    /// Parses the `--fault-model` argument.
    pub fn parse(s: &str) -> Option<FaultModel> {
        match s {
            "node" => Some(FaultModel::Node),
            "link" => Some(FaultModel::Link),
            "burst" => Some(FaultModel::Burst),
            _ => None,
        }
    }

    /// The argument spelling, for table titles.
    pub fn label(self) -> &'static str {
        match self {
            FaultModel::Node => "node",
            FaultModel::Link => "link",
            FaultModel::Burst => "burst",
        }
    }

    /// All three models, in report order.
    pub const ALL: [FaultModel; 3] = [FaultModel::Node, FaultModel::Link, FaultModel::Burst];
}

/// One Monte-Carlo reliability sweep: a topology, a trial budget, a
/// probability grid and the engine configuration knobs.
#[derive(Clone, Debug)]
pub struct ReliabilitySpec {
    /// De Bruijn order: trials run on a healthy `B(2,h)`.
    pub h: usize,
    /// Seeded trials per grid point.
    pub trials: usize,
    /// Fault probabilities to sweep.
    pub p_grid: Vec<f64>,
    /// Cycle at which the drawn fault set fires (mid-run for the default
    /// permutation workload).
    pub kill_cycle: u32,
    /// Prefix-ball radius for [`FaultModel::Burst`] (`2^radius_bits`
    /// nodes per ball).
    pub burst_radius_bits: u32,
    /// Root seed; every trial seed derives from it and the trial index.
    pub root_seed: u64,
    /// Worker threads for the trial fan-out (results are byte-identical
    /// for any value).
    pub threads: usize,
    /// When `> 1`, each run executes on a [`ShardedSim`] with this shard
    /// count instead of the single-table engine (byte-identical reports;
    /// exercised by the CI determinism job).
    pub shards: usize,
}

impl ReliabilitySpec {
    /// The canonical spec for order `h`: 200 trials over
    /// `p ∈ {0.001, 0.005, 0.01, 0.02, 0.05}`, kill cycle 2, radius-2
    /// bursts.
    pub fn canonical(h: usize) -> ReliabilitySpec {
        ReliabilitySpec {
            h,
            trials: 200,
            p_grid: vec![0.001, 0.005, 0.01, 0.02, 0.05],
            kill_cycle: 2,
            burst_radius_bits: 2,
            root_seed: 0x1992_BC92,
            threads: 1,
            shards: 1,
        }
    }
}

/// One aggregated grid point of a reliability curve.
#[derive(Clone, Debug)]
pub struct ReliabilityPoint {
    /// The fault probability.
    pub p: f64,
    /// Trials aggregated.
    pub trials: usize,
    /// Packets injected over all trials.
    pub injected: u64,
    /// Packets delivered over all trials.
    pub delivered: u64,
    /// Pooled delivery probability (`delivered / injected`).
    pub delivery_rate: f64,
    /// Wilson 95% score interval around [`ReliabilityPoint::delivery_rate`].
    pub delivery_ci: (f64, f64),
    /// Mean per-trial slowdown (faulted / healthy mean latency) over the
    /// trials that delivered at least one packet; `0.0` when none did.
    pub mean_slowdown: f64,
    /// Normal 95% interval around [`ReliabilityPoint::mean_slowdown`].
    pub slowdown_ci: (f64, f64),
    /// Trials whose slowdown was measurable (delivered > 0).
    pub slowdown_samples: usize,
}

/// One fault model's curve over the probability grid.
#[derive(Clone, Debug)]
pub struct ReliabilityCurve {
    /// The fault model swept.
    pub model: FaultModel,
    /// De Bruijn order of the swept machine.
    pub h: usize,
    /// One aggregated point per grid probability, in grid order.
    pub points: Vec<ReliabilityPoint>,
}

/// SplitMix64: the per-trial seed derivation. Small, well-mixed and
/// stateless, so a trial's seeds depend only on the root seed and the
/// trial index — never on which worker ran it.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wilson 95% score interval for `k` successes in `n` draws.
fn wilson_ci(k: u64, n: u64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_984_540_054_f64;
    let nf = n as f64;
    let phat = k as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (phat + z2 / (2.0 * nf)) / denom;
    let half = z * (phat * (1.0 - phat) / nf + z2 / (4.0 * nf * nf)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// What one trial contributes to every grid point.
struct TrialOutcome {
    /// Healthy-run mean delivered latency for this trial's workload.
    healthy_mean: f64,
    /// Per grid probability: `(injected, delivered, faulted mean latency)`.
    per_p: Vec<(u64, u64, f64)>,
}

/// The engine configuration every reliability run uses: wake-list,
/// unbounded buffers (reliability isolates *routability*, not buffer
/// sizing), implicit routes, adaptive re-routing around the drawn faults.
fn reliability_config() -> CongestionConfig {
    CongestionConfig {
        flow_control: FlowControl::Infinite,
        fault_response: FaultResponse::RerouteAdaptive,
        engine: EngineKind::WakeList,
        route_source: RouteSource::Implicit,
        max_cycles: 50_000,
    }
}

/// The faults one trial's coins select at one grid probability.
struct TrialFaults {
    /// Dead processors ([`FaultModel::Node`] only).
    nodes: Vec<usize>,
    /// Dead directed links (link and burst models).
    links: Option<LinkFaultSet>,
}

/// Draws the trial's fault coins: one coin per element in a fixed order,
/// compared against `p`, so the drawn sets are nested across the grid.
fn draw_trial_faults(
    db: &DeBruijn2,
    model: FaultModel,
    spec: &ReliabilitySpec,
    p: f64,
    fault_seed: u64,
) -> TrialFaults {
    let mut rng = StdRng::seed_from_u64(fault_seed);
    let n = db.node_count();
    match model {
        FaultModel::Node => TrialFaults {
            nodes: (0..n).filter(|_| rng.random::<f64>() < p).collect(),
            links: None,
        },
        FaultModel::Link => TrialFaults {
            nodes: Vec::new(),
            links: Some(LinkFaultSet::bernoulli(db.graph(), p, &mut rng)),
        },
        FaultModel::Burst => {
            let ball = 1usize << (spec.burst_radius_bits as usize).min(usize::BITS as usize - 1);
            let mut union = LinkFaultSet::empty(db.graph());
            let mut any = false;
            let mut center = 0usize;
            while center < n {
                if rng.random::<f64>() < p {
                    let burst = LinkFaultSet::burst(db.graph(), center, spec.burst_radius_bits)
                        .expect("burst center in range");
                    union.union_with(&burst);
                    any = true;
                }
                center += ball;
            }
            TrialFaults {
                nodes: Vec::new(),
                links: any.then_some(union),
            }
        }
    }
}

/// Runs one trial's healthy baseline plus its whole `p` row on a reused
/// single-table engine (or fresh sharded engines when `spec.shards > 1`).
fn run_trial(
    db: &DeBruijn2,
    sim: &mut CongestionSim,
    model: FaultModel,
    spec: &ReliabilitySpec,
    trial: usize,
) -> TrialOutcome {
    let placement = Embedding::identity(db.node_count());
    let workload_seed = splitmix64(spec.root_seed ^ (trial as u64).wrapping_mul(0x9E37_79B9));
    let fault_seed = splitmix64(workload_seed ^ 0x5EED_FA17);
    let mut wl_rng = StdRng::seed_from_u64(workload_seed);
    let pairs = workload::permutation_pairs(db.node_count(), &mut wl_rng);

    let mut run_one = |p: Option<f64>| -> (u64, u64, f64) {
        let faults = p.map(|p| draw_trial_faults(db, model, spec, p, fault_seed));
        if spec.shards > 1 {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            // The trial fan-out owns the thread budget; each sharded run
            // stays serial (reports are identical either way).
            let mut sharded = ShardedSim::new(machine, reliability_config(), spec.shards, 1);
            sharded.load_oblivious(db, &placement, &pairs);
            if let Some(faults) = &faults {
                for &node in &faults.nodes {
                    sharded.schedule_fault(spec.kill_cycle, node);
                }
                if let Some(links) = &faults.links {
                    sharded.schedule_link_faults(spec.kill_cycle, links);
                }
            }
            let report = sharded.run();
            (report.injected, report.delivered, report.latency.mean)
        } else {
            sim.clear_workload();
            sim.load_oblivious(db, &placement, &pairs);
            if let Some(faults) = &faults {
                for &node in &faults.nodes {
                    sim.schedule_fault(spec.kill_cycle, node);
                }
                if let Some(links) = &faults.links {
                    sim.schedule_link_faults(spec.kill_cycle, links);
                }
            }
            let report = sim.run();
            (report.injected, report.delivered, report.latency.mean)
        }
    };

    let (_, _, healthy_mean) = run_one(None);
    let per_p = spec.p_grid.iter().map(|&p| run_one(Some(p))).collect();
    TrialOutcome {
        healthy_mean,
        per_p,
    }
}

/// One worker's contiguous trial chunk, on one warmed engine.
fn trial_chunk(
    db: &DeBruijn2,
    model: FaultModel,
    spec: &ReliabilitySpec,
    trials: std::ops::Range<usize>,
) -> Vec<TrialOutcome> {
    let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    let mut sim = CongestionSim::new(machine, reliability_config());
    trials
        .map(|trial| run_trial(db, &mut sim, model, spec, trial))
        .collect()
}

/// Runs the Monte-Carlo sweep for one fault model: `spec.trials` seeded
/// trials per grid probability, fanned out over `spec.threads` crossbeam
/// workers in contiguous trial chunks and merged in trial order —
/// byte-identical output for any `threads` and `shards` setting.
pub fn reliability_sweep(spec: &ReliabilitySpec, model: FaultModel) -> ReliabilityCurve {
    let db = DeBruijn2::new(spec.h);
    let threads = crate::sim_experiments::sweep_worker_count(spec.threads, spec.trials);
    let outcomes: Vec<TrialOutcome> = if threads == 1 {
        trial_chunk(&db, model, spec, 0..spec.trials)
    } else {
        let chunk = spec.trials.div_ceil(threads);
        let db_ref = &db;
        let mut merged = Vec::with_capacity(spec.trials);
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..spec.trials)
                .step_by(chunk.max(1))
                .map(|lo| {
                    let hi = (lo + chunk).min(spec.trials);
                    scope.spawn(move |_| trial_chunk(db_ref, model, spec, lo..hi))
                })
                .collect();
            for handle in handles {
                merged.extend(handle.join().expect("reliability worker panicked"));
            }
        })
        .expect("reliability scope panicked");
        merged
    };

    let points = spec
        .p_grid
        .iter()
        .enumerate()
        .map(|(pi, &p)| aggregate(p, pi, &outcomes))
        .collect();
    ReliabilityCurve {
        model,
        h: spec.h,
        points,
    }
}

/// Folds every trial's contribution to grid point `pi`, in trial order
/// (fixed-order float sums keep the output bit-stable).
fn aggregate(p: f64, pi: usize, outcomes: &[TrialOutcome]) -> ReliabilityPoint {
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut slowdowns: Vec<f64> = Vec::with_capacity(outcomes.len());
    for trial in outcomes {
        let (inj, del, faulted_mean) = trial.per_p[pi];
        injected += inj;
        delivered += del;
        if del > 0 && trial.healthy_mean > 0.0 {
            slowdowns.push(faulted_mean / trial.healthy_mean);
        }
    }
    let delivery_rate = if injected == 0 {
        0.0
    } else {
        delivered as f64 / injected as f64
    };
    let m = slowdowns.len();
    let (mean_slowdown, slowdown_ci) = if m == 0 {
        (0.0, (0.0, 0.0))
    } else {
        let mf = m as f64;
        let mean = slowdowns.iter().sum::<f64>() / mf;
        let var = slowdowns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / if m > 1 { mf - 1.0 } else { 1.0 };
        let half = 1.959_963_984_540_054_f64 * (var / mf).sqrt();
        (mean, (mean - half, mean + half))
    };
    ReliabilityPoint {
        p,
        trials: outcomes.len(),
        injected,
        delivered,
        delivery_rate,
        delivery_ci: wilson_ci(delivered, injected),
        mean_slowdown,
        slowdown_ci,
        slowdown_samples: m,
    }
}

/// Renders one curve as a [`TextTable`] (the `experiments` driver prints
/// it; the CI determinism job diffs the rendered bytes).
pub fn render_reliability(curve: &ReliabilityCurve) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "MC reliability: {} faults on B(2,{}) ({} trials/point)",
            curve.model.label(),
            curve.h,
            curve.points.first().map_or(0, |pt| pt.trials),
        ),
        &[
            "p",
            "delivered",
            "injected",
            "delivery",
            "wilson 95%",
            "slowdown",
            "slowdown 95%",
            "samples",
        ],
    );
    for pt in &curve.points {
        table.push_row(vec![
            format!("{:.4}", pt.p),
            pt.delivered.to_string(),
            pt.injected.to_string(),
            format!("{:.6}", pt.delivery_rate),
            format!("[{:.6}, {:.6}]", pt.delivery_ci.0, pt.delivery_ci.1),
            format!("{:.4}", pt.mean_slowdown),
            format!("[{:.4}, {:.4}]", pt.slowdown_ci.0, pt.slowdown_ci.1),
            pt.slowdown_samples.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(threads: usize, shards: usize) -> ReliabilitySpec {
        ReliabilitySpec {
            h: 5,
            trials: 8,
            p_grid: vec![0.0, 0.02, 0.2],
            kill_cycle: 2,
            burst_radius_bits: 2,
            root_seed: 0xBC92,
            threads,
            shards,
        }
    }

    #[test]
    fn zero_probability_delivers_everything() {
        for model in FaultModel::ALL {
            let curve = reliability_sweep(&tiny_spec(1, 1), model);
            let p0 = &curve.points[0];
            assert_eq!(
                p0.delivered, p0.injected,
                "{model:?}: p=0 must be loss-free"
            );
            assert!(p0.delivery_ci.0 <= 1.0 && p0.delivery_ci.1 >= p0.delivery_rate - 1e-9);
        }
    }

    #[test]
    fn delivery_curves_are_monotone_in_p() {
        for model in FaultModel::ALL {
            let curve = reliability_sweep(&tiny_spec(1, 1), model);
            for pair in curve.points.windows(2) {
                assert!(
                    pair[1].delivered <= pair[0].delivered,
                    "{model:?}: delivered rose from p={} to p={}",
                    pair[0].p,
                    pair[1].p
                );
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_rendered_curve() {
        for model in FaultModel::ALL {
            let serial = render_reliability(&reliability_sweep(&tiny_spec(1, 1), model)).render();
            let threaded = render_reliability(&reliability_sweep(&tiny_spec(4, 1), model)).render();
            assert_eq!(serial, threaded, "{model:?}: thread count leaked");
        }
    }

    #[test]
    fn shard_count_does_not_change_the_rendered_curve() {
        let single = render_reliability(&reliability_sweep(&tiny_spec(1, 1), FaultModel::Link));
        for shards in [2usize, 4] {
            let sharded =
                render_reliability(&reliability_sweep(&tiny_spec(1, shards), FaultModel::Link));
            assert_eq!(
                single.render(),
                sharded.render(),
                "shards={shards} leaked into the curve"
            );
        }
    }

    #[test]
    fn wilson_interval_brackets_the_point_estimate() {
        let (lo, hi) = wilson_ci(90, 100);
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(lo > 0.8 && hi < 1.0);
        let (el, eh) = wilson_ci(0, 0);
        assert!(el < 1e-12 && eh > 1.0 - 1e-12, "empty draw covers [0,1]");
        let (l0, h0) = wilson_ci(0, 50);
        assert!(l0 < 1e-12 && h0 > 0.0 && h0 < 0.2);
        let (l1, h1) = wilson_ci(50, 50);
        assert!(h1 > 1.0 - 1e-12 && l1 > 0.9);
    }
}
