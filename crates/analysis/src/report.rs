//! Plain-text table formatting and JSON export for experiment results.

use std::fmt::Write as _;

/// A simple column-aligned text table, used by the experiment driver to
/// print every table of `EXPERIMENTS.md`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells should match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width does not match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", render_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown (used to paste results
    /// into `EXPERIMENTS.md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Serialises the table to a JSON object (title, header, rows).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "title": self.title,
            "header": self.header,
            "rows": self.rows,
        })
    }
}

/// Formats a float with a fixed, compact precision used across the tables.
pub fn fmt_f64(value: f64) -> String {
    if value.is_nan() {
        "-".to_string()
    } else {
        format!("{value:.2}")
    }
}

/// Formats an optional step count (`None` renders as "stalled").
pub fn fmt_steps(steps: Option<usize>) -> String {
    match steps {
        Some(s) => s.to_string(),
        None => "stalled".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new("demo", &["a", "bbb", "c"]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        t.push_row(vec!["10".into(), "200".into(), "3000".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("== demo =="));
        assert!(text.lines().count() >= 4);
        // The longest cell in column 3 is "3000"; header line must be padded
        // to at least that width.
        let header_line = text.lines().nth(1).unwrap();
        assert!(header_line.ends_with("   c"));
    }

    #[test]
    fn render_markdown_shape() {
        let md = sample().render_markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| a | bbb | c |"));
        assert!(md.contains("|---|---|---|"));
        assert_eq!(md.lines().count(), 5);
    }

    #[test]
    fn json_roundtrip_shape() {
        let json = sample().to_json();
        assert_eq!(json["title"], "demo");
        assert_eq!(json["rows"].as_array().unwrap().len(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new("bad", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.5), "1.50");
        assert_eq!(fmt_f64(f64::NAN), "-");
        assert_eq!(fmt_steps(Some(12)), "12");
        assert_eq!(fmt_steps(None), "stalled");
    }
}
