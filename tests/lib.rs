//! Shared helpers for the cross-crate integration suites in `tests/`.
//!
//! The actual test files live in the `tests/` subdirectory of this package
//! (`cross_crate_properties`, `end_to_end_debruijn`,
//! `end_to_end_shuffle_exchange`, `paper_claims`,
//! `reconfiguration_edge_cases`); this crate root only hosts utilities they
//! share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for integration tests: every suite derives its
/// randomness from an explicit seed so failures reproduce exactly.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use rand::Rng;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = super::seeded_rng(99);
        let mut b = super::seeded_rng(99);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
