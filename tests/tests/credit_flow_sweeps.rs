//! Acceptance tests for bounded-buffer credit flow control and the
//! offered-load sweep machinery: saturation *collapse* on the faulted,
//! reconfigured `B^1(2,8)` under credit flow control versus the flat
//! plateau of infinite buffers, plus the open-loop conservation and
//! latency-monotonicity properties on `B(2,5)`.

use ftdb_analysis::sim_experiments::{sim5_load_sweep, SweepScenario};
use ftdb_graph::Embedding;
use ftdb_sim::congestion::{run_open_loop, CongestionConfig, FlowControl, OpenLoopReport};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::workload::{InjectionProcess, OpenLoopSpec};
use ftdb_topology::DeBruijn2;

const SWEEP_LOADS: [f64; 4] = [0.05, 0.2, 0.5, 0.9];
const SWEEP_SEED: u64 = 0xF7DB;

fn faulted_b128_scenario(flow: FlowControl) -> SweepScenario {
    SweepScenario {
        h: 8,
        k: 1,
        fault_count: 1,
        port: PortModel::MultiPort,
        flow,
    }
}

fn peak_throughput(points: &[OpenLoopReport]) -> f64 {
    points.iter().map(|p| p.throughput).fold(0.0, f64::max)
}

#[test]
fn infinite_buffers_plateau_flat_past_saturation_on_faulted_b1_2_8() {
    let points = sim5_load_sweep(
        &faulted_b128_scenario(FlowControl::Infinite),
        &SWEEP_LOADS,
        SWEEP_SEED,
    );
    assert!(
        points.iter().all(|p| !p.deadlocked),
        "unbounded queues cannot deadlock"
    );
    let peak = peak_throughput(&points);
    let end = points.last().expect("nonempty sweep").throughput;
    // The de Bruijn fabric saturates around 0.24 packets/node/cycle here;
    // past saturation the delivered rate must stay flat, not collapse.
    assert!(peak > 0.2, "sweep must reach saturation (peak {peak})");
    assert!(
        end >= 0.9 * peak,
        "infinite buffers must plateau: peak {peak}, at max load {end}"
    );
}

#[test]
fn credit_flow_shows_saturation_collapse_on_faulted_b1_2_8() {
    // The acceptance shape for every depth in 1..=4: delivered throughput
    // at the highest offered load collapses to a fraction of the infinite
    // plateau — where Infinite keeps delivering at capacity, bounded
    // buffers fall over (tree saturation / buffer deadlock).
    let infinite_end = sim5_load_sweep(
        &faulted_b128_scenario(FlowControl::Infinite),
        &[*SWEEP_LOADS.last().expect("nonempty")],
        SWEEP_SEED,
    )[0]
    .throughput;
    let by_depth: Vec<Vec<OpenLoopReport>> = (1..=4u32)
        .map(|buffer_depth| {
            sim5_load_sweep(
                &faulted_b128_scenario(FlowControl::CreditBased { buffer_depth }),
                &SWEEP_LOADS,
                SWEEP_SEED,
            )
        })
        .collect();
    let first_dead =
        |ps: &[OpenLoopReport]| ps.iter().position(|p| p.deadlocked).unwrap_or(ps.len());
    for (points, buffer_depth) in by_depth.iter().zip(1u32..) {
        let end = points.last().expect("nonempty sweep");
        assert!(
            end.throughput < 0.5 * infinite_end,
            "depth {buffer_depth}: overload throughput {} did not collapse \
             (infinite plateau {infinite_end})",
            end.throughput
        );
        assert!(
            end.deadlocked || end.accepted < 0.5,
            "depth {buffer_depth}: collapse must come from blocked buffers \
             (deadlocked={}, accepted={})",
            end.deadlocked,
            end.accepted
        );
        // Deeper buffers survive at least as far up the load axis as
        // shallower ones before their first deadlocked point.
        if buffer_depth >= 2 {
            let shallower = &by_depth[(buffer_depth - 2) as usize];
            assert!(
                first_dead(points) >= first_dead(shallower),
                "depth {buffer_depth} must not deadlock earlier than depth {}",
                buffer_depth - 1
            );
        }
    }
    // Depth 4 additionally shows the classic rollover: it rises to a real
    // operating region first (throughput tracks a pre-collapse load).
    let depth4 = &by_depth[3];
    let peak = peak_throughput(depth4);
    assert!(
        peak > 0.15,
        "depth 4 must saturate before collapsing (peak {peak})"
    );
    assert!(depth4.last().expect("nonempty").throughput < 0.5 * peak);
}

fn b25_open_loop(offered_load: f64, buffer_depth: u32, seed: u64) -> OpenLoopReport {
    let db = DeBruijn2::new(5);
    let n = db.node_count();
    let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    let config = CongestionConfig {
        flow_control: if buffer_depth == 0 {
            FlowControl::Infinite
        } else {
            FlowControl::CreditBased { buffer_depth }
        },
        ..CongestionConfig::default()
    };
    let spec = OpenLoopSpec {
        offered_load,
        process: InjectionProcess::Bernoulli,
        warmup_cycles: 80,
        measure_cycles: 160,
        drain_cycles: 240,
        seed,
    };
    run_open_loop(&db, &Embedding::identity(n), machine, config, &spec)
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(16))]

    /// For any offered load and buffer depth >= 1, delivered throughput
    /// never exceeds offered load: exactly in cumulative terms (causality:
    /// nothing is delivered before it is injected), and up to boundary
    /// noise in windowed terms.
    #[test]
    fn delivered_throughput_never_exceeds_offered_load(
        offered_permille in 50u64..1000,
        depth in 1u32..5,
        seed in 0u64..500,
    ) {
        let report = b25_open_loop(offered_permille as f64 / 1000.0, depth, seed);
        proptest::prop_assert!(
            report.cum_delivered_by_window_end <= report.cum_injected_by_window_end
        );
        proptest::prop_assert!(report.window_delivered <= report.window_injected);
        proptest::prop_assert!(
            report.throughput <= report.offered_realized + 0.05,
            "windowed throughput {} above realized offered load {}",
            report.throughput,
            report.offered_realized
        );
    }

    /// Mean latency is monotonically non-decreasing in offered load on
    /// B(2,5) at well-separated sample points, for every buffer depth. The
    /// Bernoulli schedules at one seed are coupled (higher load = superset
    /// of injections with identical destinations), so this is a like-for-
    /// like comparison. Points past the collapse (accepted < 0.9) are
    /// treated as "latency -> infinity": accepted must not recover at
    /// higher loads, and latency comparison applies to pre-collapse points.
    #[test]
    fn latency_is_monotone_in_offered_load(depth in 1u32..5, seed in 0u64..200) {
        let loads = [0.1, 0.4, 0.8];
        let reports: Vec<OpenLoopReport> =
            loads.iter().map(|&p| b25_open_loop(p, depth, seed)).collect();
        let mut last_mean = 0.0f64;
        let mut collapsed = false;
        for (report, &load) in reports.iter().zip(&loads) {
            if collapsed {
                proptest::prop_assert!(
                    report.accepted < 0.95,
                    "depth {}: accepted recovered to {} at load {} after a collapse",
                    depth, report.accepted, load
                );
                continue;
            }
            if report.accepted < 0.9 {
                collapsed = true;
                continue;
            }
            proptest::prop_assert!(
                report.latency.mean >= 0.95 * last_mean,
                "depth {}: mean latency fell from {} to {} at load {}",
                depth, last_mean, report.latency.mean, load
            );
            last_mean = report.latency.mean;
        }
    }
}
