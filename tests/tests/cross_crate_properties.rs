//! Property-based integration tests spanning the whole workspace.

use ftdb_core::{FaultSet, FtDeBruijn2, FtDeBruijnM, NaturalFtShuffleExchange};
use ftdb_graph::{ops, properties, traversal};
use ftdb_topology::labels::pow_nodes;
use ftdb_topology::{DeBruijn2, DeBruijnM, ShuffleExchange};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 end to end, over random parameters and random fault sets.
    #[test]
    fn ft_base2_tolerates_random_faults(h in 3usize..7, k in 0usize..5, seed in 0u64..10_000) {
        let ft = FtDeBruijn2::new(h, k);
        let mut rng = ftdb_tests::seeded_rng(seed);
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        let phi = ft.reconfigure_verified(&faults).expect("Theorem 1");
        // The image avoids every fault and is strictly increasing.
        prop_assert!(phi.as_slice().iter().all(|&v| !faults.contains(v)));
        prop_assert!(phi.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    /// Theorem 2 end to end.
    #[test]
    fn ft_base_m_tolerates_random_faults(m in 2usize..5, h in 3usize..5, k in 0usize..4, seed in 0u64..10_000) {
        let ft = FtDeBruijnM::new(m, h, k);
        let mut rng = ftdb_tests::seeded_rng(seed);
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        prop_assert!(ft.reconfigure_verified(&faults).is_ok());
    }

    /// The fault-tolerant graph always contains the target's node count plus
    /// exactly k spares, and its degree never exceeds the closed-form bound.
    #[test]
    fn ft_graph_size_and_degree_bounds(m in 2usize..5, h in 3usize..5, k in 0usize..4) {
        let ft = FtDeBruijnM::new(m, h, k);
        prop_assert_eq!(ft.node_count(), pow_nodes(m, h) + k);
        prop_assert!(ft.graph().max_degree() <= 4 * (m - 1) * k + 2 * m);
        prop_assert!(traversal::is_connected(ft.graph()));
    }

    /// Removing any k nodes from the FT graph leaves a subgraph into which
    /// the target embeds — stated through the induced-subgraph API rather
    /// than the embedding API, mirroring the paper's definition verbatim.
    #[test]
    fn induced_subgraph_definition_of_tolerance(h in 3usize..6, k in 1usize..4, seed in 0u64..10_000) {
        let ft = FtDeBruijn2::new(h, k);
        let mut rng = ftdb_tests::seeded_rng(seed);
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        let surviving = ops::remove_nodes(ft.graph(), faults.as_bitset());
        prop_assert_eq!(surviving.graph.node_count(), ft.node_count() - k);
        // The rank map, re-expressed in the induced subgraph's node ids, is
        // the identity prefix — i.e. logical node x sits at induced node x.
        let phi = ft.reconfigure(&faults);
        for x in 0..ft.target().node_count() {
            prop_assert_eq!(surviving.from_original(phi.apply(x)), Some(x));
        }
        // And every target edge must be present inside the induced subgraph.
        for (a, b) in ft.target().graph().edges() {
            prop_assert!(surviving.graph.has_edge(a, b));
        }
    }

    /// The shuffle-exchange and de Bruijn graphs of the same h have the same
    /// node count, and SE's edge count is strictly smaller (it is the sparser
    /// network).
    #[test]
    fn se_is_sparser_than_debruijn(h in 3usize..9) {
        let se = ShuffleExchange::new(h);
        let db = DeBruijn2::new(h);
        prop_assert_eq!(se.node_count(), db.node_count());
        prop_assert!(se.graph().edge_count() < db.graph().edge_count());
    }

    /// The natural fault-tolerant shuffle-exchange always contains the
    /// fault-tolerant de Bruijn graph of the same parameters (it adds the
    /// exchange blocks on top), hence its degree dominates.
    #[test]
    fn natural_ftse_contains_ft_debruijn(h in 3usize..6, k in 0usize..4) {
        let ftse = NaturalFtShuffleExchange::new(h, k);
        let ftdb = FtDeBruijn2::new(h, k);
        prop_assert!(ops::is_identity_subgraph(ftdb.graph(), ftse.graph()));
        prop_assert!(ftse.graph().max_degree() >= ftdb.graph().max_degree());
    }

    /// Building the same topology twice gives identical graphs (construction
    /// is deterministic), and relabelling by a random permutation preserves
    /// the degree profile.
    #[test]
    fn construction_is_deterministic(m in 2usize..5, h in 2usize..5, seed in 0u64..10_000) {
        let a = DeBruijnM::new(m, h);
        let b = DeBruijnM::new(m, h);
        prop_assert!(properties::same_edge_set(a.graph(), b.graph()));
        let mut rng = ftdb_tests::seeded_rng(seed);
        let mut perm: Vec<usize> = (0..a.node_count()).collect();
        use rand::seq::SliceRandom;
        perm.shuffle(&mut rng);
        let relabelled = ops::relabel(a.graph(), &perm);
        prop_assert!(properties::same_degree_profile(a.graph(), &relabelled));
    }

    /// Spares at the end: with fewer than k faults, the unused spares are
    /// exactly the highest-ranked healthy nodes.
    #[test]
    fn unused_spares_are_the_tail(h in 3usize..6, k in 2usize..5, faults_used in 0usize..3, seed in 0u64..10_000) {
        let ft = FtDeBruijn2::new(h, k);
        let f = faults_used.min(k);
        let mut rng = ftdb_tests::seeded_rng(seed);
        let faults = FaultSet::random(ft.node_count(), f, &mut rng).expect("k within node count");
        let phi = ft.reconfigure(&faults);
        let spares = ftdb_core::reconfig::unused_spares(&phi, &faults);
        prop_assert_eq!(spares.len(), k - f);
        let max_used = phi.as_slice().iter().copied().max().unwrap_or(0);
        prop_assert!(spares.iter().all(|&s| s > max_used));
    }
}
