//! Property suite for the implicit O(1) next-hop generators.
//!
//! The sharded million-node engine never materializes oblivious routes: it
//! recomputes each hop from two words of shift-register state
//! (`ftdb_sim::congestion::implicit_route`). These properties pin the
//! generators to the materialized loaders hop for hop — on healthy machines,
//! on reconfigured fault-tolerant machines (where the embedding is a
//! non-identity placement), and for the shuffle-exchange automaton — at
//! random `(h, src, dst)` well beyond the exhaustive small-`h` unit tests.

use ftdb_core::{FaultSet, FtDeBruijn2};
use ftdb_graph::Embedding;
use ftdb_sim::congestion::implicit_route::{
    apply_place, hops_left, next_hop, rem_init, se_next_hop,
};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::routing::route_logical_debruijn_into;
use ftdb_topology::{DeBruijn2, ShuffleExchange};
use proptest::prelude::*;

/// Walks the de Bruijn shift register from logical `s` to logical `t` under
/// `place`, returning the physical node sequence (self-steps and placement
/// collapses skipped — the loader's path representation).
fn implicit_physical_path(place: &[u32], h: u32, s: u32, t: u32) -> Vec<u32> {
    let mask = (1u32 << h) - 1;
    let start = apply_place(place, s);
    let mut out = vec![start];
    let (mut phys, mut pos, mut rem) = (start, s, rem_init(h, t));
    while let Some((p, np, nr)) = next_hop(place, mask, phys, pos, rem) {
        out.push(p);
        phys = p;
        pos = np;
        rem = nr;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Healthy B(2,h): the generator reproduces the materialized logical
    /// route (identity placement) for random endpoints up to h = 16.
    #[test]
    fn implicit_matches_materialized_on_healthy_b2h(
        h in 2u32..17,
        s in 0u32..u32::MAX,
        t in 0u32..u32::MAX,
    ) {
        let n = 1u32 << h;
        let (s, t) = (s % n, t % n);
        let db = DeBruijn2::new(h as usize);
        let mut want = Vec::new();
        db.route_into(s as usize, t as usize, &mut want);
        let want: Vec<u32> = want.iter().map(|&x| x as u32).collect();
        let got = implicit_physical_path(&[], h, s, t);
        prop_assert_eq!(&got, &want, "h={} s={} t={}", h, s, t);
        prop_assert_eq!(
            hops_left(&[], n - 1, s, s, rem_init(h, t)) as usize,
            want.len() - 1
        );
    }

    /// Reconfigured B^k(2,h): after random faults and Theorem 1
    /// reconfiguration, the generator — fed the placement map — reproduces
    /// the physical path the materialized loader builds through the
    /// surviving machine.
    #[test]
    fn implicit_matches_materialized_on_reconfigured_b2h(
        h in 3usize..9,
        k in 1usize..4,
        seed in 0u64..10_000,
        raw_s in 0u32..u32::MAX,
        raw_t in 0u32..u32::MAX,
    ) {
        let ft = FtDeBruijn2::new(h, k);
        let db = ft.target().clone();
        let n = db.node_count() as u32;
        let (s, t) = (raw_s % n, raw_t % n);
        let mut rng = ftdb_tests::seeded_rng(seed);
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        let phi = ft.reconfigure_verified(&faults).expect("Theorem 1");
        let machine =
            PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
        let mut want = Vec::new();
        route_logical_debruijn_into(&db, &phi, &machine, s as usize, t as usize, &mut want)
            .expect("reconfigured machine hosts every logical route");
        let want: Vec<u32> = want.iter().map(|&x| x as u32).collect();
        let place: Vec<u32> = phi.as_slice().iter().map(|&x| x as u32).collect();
        let got = implicit_physical_path(&place, h as u32, s, t);
        prop_assert_eq!(&got, &want, "h={} k={} s={} t={}", h, k, s, t);
    }

    /// Identity-placement walks agree with the explicitly-elided placement
    /// the engine uses for healthy machines (empty slice == identity map).
    #[test]
    fn elided_placement_is_the_identity_placement(
        h in 2u32..11,
        raw_s in 0u32..u32::MAX,
        raw_t in 0u32..u32::MAX,
    ) {
        let n = 1u32 << h;
        let (s, t) = (raw_s % n, raw_t % n);
        let ident = Embedding::identity(n as usize);
        let place: Vec<u32> = ident.as_slice().iter().map(|&x| x as u32).collect();
        prop_assert_eq!(
            implicit_physical_path(&place, h, s, t),
            implicit_physical_path(&[], h, s, t)
        );
    }

    /// Shuffle-exchange automaton: `se_next_hop` replays
    /// `ShuffleExchange::route` for random endpoints up to h = 14 — the
    /// paper's other constant-degree topology is equally O(1)-recomputable.
    #[test]
    fn se_automaton_matches_route_at_random_larger_h(
        h in 2u32..15,
        raw_s in 0u32..u32::MAX,
        raw_t in 0u32..u32::MAX,
    ) {
        let n = 1u32 << h;
        let (s, t) = (raw_s % n, raw_t % n);
        let se = ShuffleExchange::new(h as usize);
        let want: Vec<u32> = se
            .route(s as usize, t as usize)
            .iter()
            .map(|&x| x as u32)
            .collect();
        let mut got = vec![s];
        let (mut cur, mut round, mut pending) = (s, 1, false);
        while let Some((nx, nj, np)) = se_next_hop(h, t, cur, round, pending) {
            got.push(nx);
            cur = nx;
            round = nj;
            pending = np;
        }
        prop_assert_eq!(&got, &want, "h={} s={} t={}", h, s, t);
    }
}

/// The route state behind the walks above is the loader's actual packet
/// state: a spot check that `ShardedSim` delivers a random reconfigured-size
/// workload with every latency equal to the implicit hop count when the
/// network is uncontended (one packet at a time).
#[test]
fn implicit_hop_counts_are_the_uncontended_latencies() {
    use ftdb_sim::{CongestionConfig, ShardedSim};
    let h = 7u32;
    let db = DeBruijn2::new(h as usize);
    let n = db.node_count();
    let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    let mut rng = ftdb_tests::seeded_rng(42);
    let pairs: Vec<(usize, usize)> = (0..64)
        .map(|_| {
            use rand::RngExt;
            (rng.random_range(0..n), rng.random_range(0..n))
        })
        .collect();
    // One packet in flight at a time: inject each after the previous has
    // certainly drained (h cycles apart is enough headroom at 2h spacing).
    let injections: Vec<(u32, usize, usize)> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| ((i as u32) * 2 * h, s, t))
        .collect();
    let mut sim = ShardedSim::new(machine, CongestionConfig::default(), 4, 1);
    sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
    sim.run_to_quiescence();
    for (id, &(s, t)) in pairs.iter().enumerate() {
        let hops = hops_left(&[], (1 << h) - 1, s as u32, s as u32, rem_init(h, t as u32));
        let (inject_at, delivered_at, dropped_at) = sim.packet_outcome(id);
        assert_eq!(dropped_at, None, "packet {id} dropped");
        assert_eq!(inject_at, (id as u32) * 2 * h);
        // A packet makes its first hop in the cycle it is injected, so an
        // uncontended h-hop route delivers at `inject + hops - 1` (zero-hop
        // packets resolve at injection).
        assert_eq!(
            delivered_at,
            Some(inject_at + hops.saturating_sub(1)),
            "packet {id} ({s}->{t}): latency must equal the implicit hop count"
        );
    }
}
