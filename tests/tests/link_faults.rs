//! Acceptance and differential tests for directed-link faults:
//!
//! * killing every CSR slot incident to a node is report-identical to
//!   killing the node itself (for traffic injected before the kill), under
//!   both [`FaultResponse`] modes and bounded-buffer flow control;
//! * the wake-list engine, the naive rescan and the sharded engine agree
//!   byte-for-byte on workloads with mid-run link kills;
//! * credit/VC conservation holds through a mid-run correlated link burst,
//!   checked every cycle, for both engines x both fault responses x all
//!   three flow-control modes;
//! * delivery under Bernoulli link faults is monotone non-increasing in
//!   the fault probability `p` (coupled coin flips make the fault sets
//!   nested, so the property holds per packet, not just in aggregate).

use ftdb_core::LinkFaultSet;
use ftdb_graph::Embedding;
use ftdb_sim::congestion::{
    CongestionConfig, CongestionReport, CongestionSim, EngineKind, FaultResponse, FlowControl,
    RouteSource, ShardedSim, Switching,
};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::workload;
use ftdb_topology::DeBruijn2;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAX_CYCLES: u32 = 5_000;

fn config(engine: EngineKind, flow: FlowControl, response: FaultResponse) -> CongestionConfig {
    CongestionConfig {
        flow_control: flow,
        fault_response: response,
        engine,
        route_source: RouteSource::Implicit,
        max_cycles: MAX_CYCLES,
    }
}

/// Builds a loaded single-table engine over `B(2,h)` with a random
/// permutation workload injected at cycle 0.
fn loaded_sim(h: usize, cfg: CongestionConfig, seed: u64) -> (DeBruijn2, CongestionSim) {
    let db = DeBruijn2::new(h);
    let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    let mut sim = CongestionSim::new(machine, cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = workload::permutation_pairs(db.node_count(), &mut rng);
    sim.load_oblivious(&db, &Embedding::identity(db.node_count()), &pairs);
    (db, sim)
}

/// One finished run: the report, its `Debug` text, and every packet's
/// `(injected, delivered, dropped)` cycle stamps.
type Observed = (
    CongestionReport,
    String,
    Vec<(u32, Option<u32>, Option<u32>)>,
);

/// Everything observable about one finished run.
fn observe(sim: &mut CongestionSim) -> Observed {
    let report = sim.report();
    let text = format!("{report:?}");
    let outcomes = (0..sim.counts().0 as usize)
        .map(|id| sim.packet_outcome(id))
        .collect();
    (report, text, outcomes)
}

/// Exhaustive field comparison (no `..`), so a new report field fails to
/// compile here until it is compared.
fn assert_report_fields_equal(a: &CongestionReport, b: &CongestionReport, what: &str) {
    let CongestionReport {
        cycles,
        injected,
        delivered,
        dropped,
        total_flits,
        completed,
        deadlocked,
        vc_flits,
        vc_hol_blocked_cycles,
        latency,
    } = a;
    assert_eq!(*cycles, b.cycles, "{what}: cycles diverged");
    assert_eq!(*injected, b.injected, "{what}: injected diverged");
    assert_eq!(*delivered, b.delivered, "{what}: delivered diverged");
    assert_eq!(*dropped, b.dropped, "{what}: dropped diverged");
    assert_eq!(*total_flits, b.total_flits, "{what}: total_flits diverged");
    assert_eq!(*completed, b.completed, "{what}: completed diverged");
    assert_eq!(*deadlocked, b.deadlocked, "{what}: deadlocked diverged");
    assert_eq!(*vc_flits, b.vc_flits, "{what}: vc_flits diverged");
    assert_eq!(
        *vc_hol_blocked_cycles, b.vc_hol_blocked_cycles,
        "{what}: vc_hol_blocked_cycles diverged"
    );
    assert_eq!(*latency, b.latency, "{what}: latency diverged");
}

// ---------------------------------------------------------------------------
// Node kill == all incident directed links killed
// ---------------------------------------------------------------------------

/// For a workload fully injected before the kill cycle, scheduling node
/// `x`'s death is observably identical to scheduling the death of every
/// directed link incident to `x`: packets at `x` cannot leave (every
/// outgoing slot is dead) and packets heading for `x` hit a dead slot
/// exactly when they would have hit the dead node, so every drop, every
/// re-route BFS and every cycle stamp coincides.
fn assert_node_kill_equals_incident_links(flow: FlowControl, response: FaultResponse) {
    for engine in [EngineKind::WakeList, EngineKind::NaiveScan] {
        for (seed, victim, kill_cycle) in [(0x51u64, 11usize, 2u32), (0x52, 30, 4), (0x53, 5, 1)] {
            let (_, mut by_node) = loaded_sim(5, config(engine, flow, response), seed);
            by_node.schedule_fault(kill_cycle, victim);
            by_node.run_to_quiescence();
            by_node
                .check_credit_conservation()
                .expect("conservation after node kill");
            let (nr, nt, no) = observe(&mut by_node);

            let (_, mut by_links) = loaded_sim(5, config(engine, flow, response), seed);
            let faults = LinkFaultSet::node_fault(by_links.machine().graph(), victim)
                .expect("victim in range");
            by_links.schedule_link_faults(kill_cycle, &faults);
            by_links.run_to_quiescence();
            by_links
                .check_credit_conservation()
                .expect("conservation after incident-link kill");
            let (lr, lt, lo) = observe(&mut by_links);

            let what = format!("{engine:?}/{flow:?}/{response:?} victim {victim}");
            assert_report_fields_equal(&nr, &lr, &what);
            assert_eq!(nt, lt, "{what}: report text diverged");
            assert_eq!(no, lo, "{what}: per-packet outcome stamps diverged");
        }
    }
}

#[test]
fn node_kill_equals_incident_link_kills_under_drop() {
    assert_node_kill_equals_incident_links(
        FlowControl::CreditBased { buffer_depth: 2 },
        FaultResponse::Drop,
    );
}

#[test]
fn node_kill_equals_incident_link_kills_under_reroute() {
    assert_node_kill_equals_incident_links(
        FlowControl::CreditBased { buffer_depth: 2 },
        FaultResponse::RerouteAdaptive,
    );
}

#[test]
fn node_kill_equals_incident_link_kills_under_virtual_channels() {
    assert_node_kill_equals_incident_links(
        FlowControl::VirtualChannel {
            vcs: 2,
            buffer_depth: 2,
            switching: Switching::Wormhole { packet_flits: 2 },
        },
        FaultResponse::RerouteAdaptive,
    );
}

// ---------------------------------------------------------------------------
// Engine differentials with link kills
// ---------------------------------------------------------------------------

/// A correlated burst: every directed link incident to the label-prefix
/// ball around `center` of the given radius.
fn burst_set(sim: &CongestionSim, center: usize, radius_bits: u32) -> LinkFaultSet {
    LinkFaultSet::burst(sim.machine().graph(), center, radius_bits).expect("center in range")
}

fn run_with_burst(
    engine: EngineKind,
    flow: FlowControl,
    response: FaultResponse,
    seed: u64,
    kill_cycle: u32,
) -> Observed {
    let (_, mut sim) = loaded_sim(5, config(engine, flow, response), seed);
    let faults = burst_set(&sim, 12, 2);
    sim.schedule_link_faults(kill_cycle, &faults);
    sim.run_to_quiescence();
    sim.check_credit_conservation()
        .expect("conservation at quiescence");
    observe(&mut sim)
}

#[test]
fn wake_list_matches_naive_scan_through_link_bursts() {
    for flow in [
        FlowControl::Infinite,
        FlowControl::CreditBased { buffer_depth: 1 },
        FlowControl::VirtualChannel {
            vcs: 2,
            buffer_depth: 2,
            switching: Switching::StoreAndForward,
        },
    ] {
        for response in [FaultResponse::Drop, FaultResponse::RerouteAdaptive] {
            for (seed, kill_cycle) in [(0xB1u64, 1u32), (0xB2, 3), (0xB3, 7)] {
                let wake = run_with_burst(EngineKind::WakeList, flow, response, seed, kill_cycle);
                let naive = run_with_burst(EngineKind::NaiveScan, flow, response, seed, kill_cycle);
                let what = format!("{flow:?}/{response:?}/seed {seed:#x}");
                assert_report_fields_equal(&wake.0, &naive.0, &what);
                assert_eq!(wake.1, naive.1, "{what}: report text diverged");
                assert_eq!(wake.2, naive.2, "{what}: outcome stamps diverged");
            }
        }
    }
}

#[test]
fn sharded_engine_matches_single_table_through_link_bursts() {
    let response = FaultResponse::RerouteAdaptive;
    for flow in [
        FlowControl::Infinite,
        FlowControl::CreditBased { buffer_depth: 2 },
    ] {
        let single = run_with_burst(EngineKind::WakeList, flow, response, 0xD1, 2);
        for (shards, threads) in [(1usize, 1usize), (2, 1), (4, 1), (4, 2)] {
            let db = DeBruijn2::new(5);
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = ShardedSim::new(
                machine,
                config(EngineKind::WakeList, flow, response),
                shards,
                threads,
            );
            let mut rng = StdRng::seed_from_u64(0xD1);
            let pairs = workload::permutation_pairs(db.node_count(), &mut rng);
            sim.load_oblivious(&db, &Embedding::identity(db.node_count()), &pairs);
            let faults =
                LinkFaultSet::burst(sim.machine().graph(), 12, 2).expect("center in range");
            sim.schedule_link_faults(2, &faults);
            sim.run_to_quiescence();
            let report = sim.report();
            let text = format!("{report:?}");
            let outcomes: Vec<_> = (0..sim.counts().0 as usize)
                .map(|id| sim.packet_outcome(id))
                .collect();
            let what = format!("{flow:?} shards={shards} threads={threads}");
            assert_report_fields_equal(&single.0, &report, &what);
            assert_eq!(single.1, text, "{what}: report text diverged");
            assert_eq!(single.2, outcomes, "{what}: outcome stamps diverged");
        }
    }
}

// ---------------------------------------------------------------------------
// Conservation through mid-run link kills, every cycle
// ---------------------------------------------------------------------------

#[test]
fn credit_conservation_holds_every_cycle_through_link_bursts() {
    for engine in [EngineKind::WakeList, EngineKind::NaiveScan] {
        for flow in [
            FlowControl::CreditBased { buffer_depth: 2 },
            FlowControl::VirtualChannel {
                vcs: 2,
                buffer_depth: 2,
                switching: Switching::StoreAndForward,
            },
            FlowControl::VirtualChannel {
                vcs: 2,
                buffer_depth: 2,
                switching: Switching::Wormhole { packet_flits: 3 },
            },
        ] {
            for response in [FaultResponse::Drop, FaultResponse::RerouteAdaptive] {
                let (_, mut sim) = loaded_sim(5, config(engine, flow, response), 0xC0);
                let faults = burst_set(&sim, 21, 2);
                sim.schedule_link_faults(3, &faults);
                // A second, single-link wave later in the drain.
                sim.schedule_link_fault_slot(9, 0);
                let mut cycles = 0u32;
                loop {
                    let events = sim.step();
                    sim.check_credit_conservation().unwrap_or_else(|msg| {
                        panic!(
                            "{engine:?}/{flow:?}/{response:?} cycle {}: {msg}",
                            events.cycle
                        )
                    });
                    cycles += 1;
                    if events.is_idle() || cycles > MAX_CYCLES {
                        break;
                    }
                }
                assert!(
                    cycles <= MAX_CYCLES,
                    "{engine:?}/{flow:?}/{response:?} never drained"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Delivery is monotone non-increasing in the Bernoulli fault probability
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Coupled Bernoulli draws (one coin per slot, shared across the grid)
    /// make the fault sets nested as `p` grows, so under `Drop` with the
    /// kill at cycle 0 each packet's fate is monotone: a packet delivered
    /// at `p_hi` is delivered at every `p_lo <= p_hi`.
    #[test]
    fn delivery_is_monotone_in_bernoulli_link_fault_probability(seed in 0u64..100_000) {
        let grid = [0.0f64, 0.02, 0.05, 0.1, 0.25, 0.6];
        let mut prev: Option<Vec<bool>> = None;
        for &p in &grid {
            let (_, mut sim) = loaded_sim(
                5,
                config(EngineKind::WakeList, FlowControl::Infinite, FaultResponse::Drop),
                seed,
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_17);
            let faults = LinkFaultSet::bernoulli(sim.machine().graph(), p, &mut rng);
            sim.schedule_link_faults(0, &faults);
            sim.run_to_quiescence();
            let delivered: Vec<bool> = (0..sim.counts().0 as usize)
                .map(|id| sim.packet_outcome(id).1.is_some())
                .collect();
            if let Some(lower_p) = &prev {
                for (id, (&now, &before)) in delivered.iter().zip(lower_p.iter()).enumerate() {
                    prop_assert!(
                        before || !now,
                        "packet {id} delivered at p={p} but not at the lower probability"
                    );
                }
            }
            prev = Some(delivered);
        }
        // p = 0 must deliver everything; the workload is loss-free without faults.
        // (Checked via the first grid entry's vector.)
    }
}
