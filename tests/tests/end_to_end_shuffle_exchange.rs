//! End-to-end integration: fault-tolerant shuffle-exchange networks,
//! exercised through the Ascend/Descend simulator.

use ftdb_core::verify::verify_exhaustive;
use ftdb_core::{FaultSet, FtShuffleExchange, NaturalFtShuffleExchange};
use ftdb_graph::Embedding;
use ftdb_sim::ascend_descend::{
    allreduce_hypercube, allreduce_shuffle_exchange, descend_shuffle_exchange,
};
use ftdb_sim::machine::{PhysicalMachine, PortModel, SimError};
use ftdb_sim::workload;
use ftdb_topology::se_embedding::embed_se_into_debruijn;
use ftdb_topology::{DeBruijn2, ShuffleExchange};

#[test]
fn se_embeds_into_debruijn_for_all_practical_h() {
    // The external containment the paper cites, verified constructively.
    for h in 2..=6 {
        let se = ShuffleExchange::new(h);
        let db = DeBruijn2::new(h);
        let embedding = embed_se_into_debruijn(h)
            .into_embedding()
            .unwrap_or_else(|| panic!("no SE⊆DB embedding found for h={h}"));
        embedding.verify(se.graph(), db.graph()).unwrap();
    }
}

#[test]
fn ft_shuffle_exchange_via_db_is_exhaustively_tolerant() {
    for (h, k) in [(3, 1), (3, 2), (4, 1)] {
        let ft = FtShuffleExchange::new(h, k).unwrap();
        // The right reconfiguration for the SE target composes the SE ⊆ DB
        // containment with the rank map, so enumerate the fault sets and
        // check through the construction's own reconfigure method.
        let mut all_ok = true;
        let combos = ftdb_core::fault::Combinations::new(ft.node_count(), k);
        for combo in combos {
            let faults = FaultSet::from_nodes(ft.node_count(), combo.iter().copied());
            all_ok &= ft.reconfigure_verified(&faults).is_ok();
        }
        assert!(all_ok, "FT-SE via DB failed for h={h}, k={k}");
    }
}

#[test]
fn natural_ft_shuffle_exchange_is_exhaustively_tolerant() {
    for (h, k) in [(3, 1), (3, 2), (4, 1), (4, 2)] {
        let se = NaturalFtShuffleExchange::new(h, k);
        let report = verify_exhaustive(se.target().graph(), se.graph(), k, 4);
        assert!(
            report.is_tolerant(),
            "natural SE^{k}_{h}: {:?}",
            report.failures
        );
    }
}

#[test]
fn ascend_and_descend_agree_on_the_total() {
    let h = 5;
    let se = ShuffleExchange::new(h);
    let n = se.node_count();
    let machine = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
    let placement = Embedding::identity(n);
    let mut rng = ftdb_tests::seeded_rng(77);
    let (values, total) = workload::random_values(n, &mut rng);
    let reference = allreduce_hypercube(h, &values);
    let ascend = allreduce_shuffle_exchange(&se, &placement, &machine, &values).unwrap();
    let descend = descend_shuffle_exchange(&se, &placement, &machine, &values).unwrap();
    assert!(reference.values.iter().all(|&v| v == total));
    assert!(ascend.values.iter().all(|&v| v == total));
    assert!(descend.values.iter().all(|&v| v == total));
    assert_eq!(ascend.steps, 2 * h);
    assert_eq!(descend.steps, 2 * h);
    assert_eq!(reference.steps, h);
}

#[test]
fn every_single_fault_stalls_the_unprotected_se_machine() {
    // The motivating claim, exhaustively: whichever single processor fails,
    // the Ascend run on the spare-less SE machine cannot complete, because
    // Ascend uses every node.
    let h = 4;
    let se = ShuffleExchange::new(h);
    let n = se.node_count();
    let values = workload::index_values(n);
    for faulty in 0..n {
        let mut machine = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(faulty);
        let result = allreduce_shuffle_exchange(&se, &Embedding::identity(n), &machine, &values);
        assert!(
            matches!(result, Err(SimError::FaultyProcessor { .. })),
            "faulty={faulty} unexpectedly completed"
        );
    }
}

#[test]
fn every_single_fault_is_absorbed_by_the_ft_machine() {
    let h = 4;
    let k = 1;
    let ft = FtShuffleExchange::new(h, k).unwrap();
    let se = ShuffleExchange::new(h);
    let n = se.node_count();
    let values = workload::index_values(n);
    let expected = allreduce_hypercube(h, &values).values[0];
    for faulty in 0..ft.node_count() {
        let faults = FaultSet::from_nodes(ft.node_count(), [faulty]);
        let placement = ft.reconfigure_verified(&faults).unwrap();
        let machine =
            PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
        let out = allreduce_shuffle_exchange(&se, &placement, &machine, &values)
            .unwrap_or_else(|e| panic!("faulty={faulty}: {e}"));
        assert_eq!(out.steps, 2 * h);
        assert!(out.values.iter().all(|&v| v == expected));
    }
}

#[test]
fn natural_construction_also_supports_the_ascend_run() {
    // The degree-(6k+4)-style construction is a valid host too: its
    // reconfiguration embeds SE directly (no containment needed).
    let h = 4;
    let k = 2;
    let ftse = NaturalFtShuffleExchange::new(h, k);
    let se = ShuffleExchange::new(h);
    let values = workload::index_values(se.node_count());
    let expected = allreduce_hypercube(h, &values).values[0];
    let mut rng = ftdb_tests::seeded_rng(13);
    for _ in 0..20 {
        let faults = FaultSet::random(ftse.node_count(), k, &mut rng).expect("k within node count");
        let placement = ftse.reconfigure_verified(&faults).unwrap();
        let machine =
            PhysicalMachine::with_faults(ftse.graph().clone(), faults, PortModel::MultiPort);
        let out = allreduce_shuffle_exchange(&se, &placement, &machine, &values).unwrap();
        assert!(out.values.iter().all(|&v| v == expected));
    }
}
