//! Property tests asserting the CSR `Graph` is observationally identical to
//! the seed `Vec<Vec<NodeId>>` adjacency representation: same neighbour
//! order, `has_edge`, `degree`, and BFS distances — on random graphs and on
//! `B(2,h)` / `SE_h` up to `h = 10`.

use ftdb_graph::{traversal, Graph, GraphBuilder, NodeId};
use ftdb_topology::{DeBruijn2, ShuffleExchange};
use proptest::prelude::*;
use rand::RngExt;
use std::collections::VecDeque;

/// The seed representation: plain sorted, de-duplicated adjacency lists.
/// This mirrors the pre-CSR `Graph` internals exactly.
struct ReferenceGraph {
    adjacency: Vec<Vec<NodeId>>,
}

impl ReferenceGraph {
    fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adjacency = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u == v {
                continue; // self-loops elided, as in GraphBuilder
            }
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        ReferenceGraph { adjacency }
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v]
    }

    fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v].len()
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.adjacency.len()
            && v < self.adjacency.len()
            && self.adjacency[u].binary_search(&v).is_ok()
    }

    fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Textbook BFS on the reference lists.
    fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.adjacency.len()];
        let mut queue = VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].unwrap();
            for &v in &self.adjacency[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

/// Checks every observable of the CSR graph against the reference model.
fn assert_observationally_equal(csr: &Graph, reference: &ReferenceGraph) {
    let n = csr.node_count();
    assert_eq!(n, reference.adjacency.len());
    assert_eq!(csr.edge_count(), reference.edge_count());
    for v in 0..n {
        assert_eq!(csr.degree(v), reference.degree(v), "degree of {v}");
        let csr_neighbors: Vec<NodeId> = csr.neighbor_ids(v).collect();
        assert_eq!(csr_neighbors, reference.neighbors(v), "neighbours of {v}");
    }
    // has_edge over all pairs (plus a few out-of-range probes).
    for u in 0..n {
        for v in 0..n {
            assert_eq!(
                csr.has_edge(u, v),
                reference.has_edge(u, v),
                "has_edge({u},{v})"
            );
        }
    }
    assert!(!csr.has_edge(n, 0));
    assert!(!csr.has_edge(0, n + 7));
    // BFS distances from a spread of sources.
    for source in (0..n).step_by((n / 8).max(1)) {
        assert_eq!(
            traversal::bfs_distances(csr, source),
            reference.bfs_distances(source),
            "BFS from {source}"
        );
    }
    csr.check_invariants().unwrap();
}

fn random_edges(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = ftdb_tests::seeded_rng(seed);
    (0..count)
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random multigraph input (duplicates and self-loops included): CSR and
    /// the seed representation must agree on everything observable.
    #[test]
    fn csr_matches_reference_on_random_graphs(n in 1usize..48, density in 0usize..4, seed in 0u64..10_000) {
        let count = n * (density + 1);
        let edges = random_edges(n, count, seed);
        let mut builder = GraphBuilder::new(n);
        builder.add_edges(edges.iter().copied());
        let csr = builder.build();
        let reference = ReferenceGraph::from_edges(n, &edges);
        assert_observationally_equal(&csr, &reference);
    }
}

#[test]
fn csr_matches_reference_on_debruijn_up_to_h10() {
    for h in 1..=10 {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        // Independent edge generation straight from the digit definition:
        // shift left (append 0/1) and shift right (prepend 0/1).
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for x in 0..n {
            edges.push((x, (x << 1) & (n - 1)));
            edges.push((x, ((x << 1) | 1) & (n - 1)));
            edges.push((x, x >> 1));
            edges.push((x, (x >> 1) | (1 << (h - 1))));
        }
        let reference = ReferenceGraph::from_edges(n, &edges);
        assert_observationally_equal(db.graph(), &reference);
    }
}

#[test]
fn csr_matches_reference_on_shuffle_exchange_up_to_h10() {
    for h in 1..=10 {
        let se = ShuffleExchange::new(h);
        let n = se.node_count();
        // Independent edge generation from the exchange/shuffle arithmetic.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for x in 0..n {
            edges.push((x, se.exchange(x)));
            edges.push((x, se.shuffle(x)));
        }
        let reference = ReferenceGraph::from_edges(n, &edges);
        assert_observationally_equal(se.graph(), &reference);
    }
}
