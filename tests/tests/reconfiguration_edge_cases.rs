//! Edge cases of the reconfiguration algorithm: zero spares, fault sets
//! consisting entirely of spares, and fault sets that exceed the budget.
//!
//! The paper's Theorems 1 and 2 quantify over "at most k faults"; these
//! tests pin down the boundary behaviour of the implementation at both ends
//! of that range.

use ftdb_core::reconfig::{displacements, unused_spares};
use ftdb_core::{FaultError, FaultSet, FtDeBruijn2, FtDeBruijnM};
use ftdb_tests::seeded_rng;

/// With k = 0 there are no spares: the fault-tolerant graph *is* the target
/// and the only legal fault set is empty, reconfigured by the identity.
#[test]
fn k_zero_identity_reconfiguration() {
    for h in 2..=6 {
        let ft = FtDeBruijn2::new(h, 0);
        assert_eq!(ft.node_count(), 1 << h);
        let faults = FaultSet::empty(ft.node_count());
        let phi = ft.reconfigure_verified(&faults).expect("k = 0, no faults");
        assert_eq!(
            phi.as_slice(),
            (0..ft.node_count()).collect::<Vec<_>>().as_slice()
        );
        assert!(displacements(&phi).iter().all(|&d| d == 0));
        assert!(unused_spares(&phi, &faults).is_empty());
    }
}

/// Same boundary for the base-m construction.
#[test]
fn k_zero_identity_reconfiguration_base_m() {
    let ft = FtDeBruijnM::new(3, 3, 0);
    let faults = FaultSet::empty(ft.node_count());
    let phi = ft.reconfigure_verified(&faults).expect("k = 0, no faults");
    assert_eq!(phi.as_slice().len(), 27);
    assert!(displacements(&phi).iter().all(|&d| d == 0));
}

/// With k = 0, even a single fault exceeds the budget and must be rejected.
#[test]
#[should_panic(expected = "exceed the fault budget")]
fn k_zero_rejects_any_fault() {
    let ft = FtDeBruijn2::new(4, 0);
    let faults = FaultSet::from_nodes(ft.node_count(), [0]);
    let _ = ft.reconfigure(&faults);
}

/// Killing exactly the k spare nodes (the highest-numbered ones) leaves the
/// target nodes untouched: reconfiguration is the identity and no healthy
/// spare remains.
#[test]
fn all_spare_fault_set_is_identity() {
    let (h, k) = (4, 3);
    let ft = FtDeBruijn2::new(h, k);
    let n = ft.target().node_count();
    let faults = FaultSet::from_nodes(ft.node_count(), n..n + k);
    let phi = ft
        .reconfigure_verified(&faults)
        .expect("spares-only faults");
    assert_eq!(phi.as_slice(), (0..n).collect::<Vec<_>>().as_slice());
    assert!(displacements(&phi).iter().all(|&d| d == 0));
    assert!(unused_spares(&phi, &faults).is_empty());
}

/// The spares-only fault set for the base-m construction.
#[test]
fn all_spare_fault_set_is_identity_base_m() {
    let (m, h, k) = (3, 3, 2);
    let ft = FtDeBruijnM::new(m, h, k);
    let n = ft.target().node_count();
    let faults = FaultSet::from_nodes(ft.node_count(), n..n + k);
    let phi = ft
        .reconfigure_verified(&faults)
        .expect("spares-only faults");
    assert_eq!(phi.as_slice(), (0..n).collect::<Vec<_>>().as_slice());
}

/// A fault set larger than the budget k is rejected by the construction.
#[test]
#[should_panic(expected = "exceed the fault budget")]
fn over_budget_fault_set_rejected() {
    let ft = FtDeBruijn2::new(4, 2);
    let faults = FaultSet::from_nodes(ft.node_count(), [1, 5, 9]);
    let _ = ft.reconfigure(&faults);
}

/// `FaultSet::random` refuses to draw more faults than the universe holds —
/// an `Err`, not a panic.
#[test]
fn random_fault_set_larger_than_universe_rejected() {
    let mut rng = seeded_rng(7);
    assert_eq!(
        FaultSet::random(10, 11, &mut rng),
        Err(FaultError::CountExceedsUniverse {
            count: 11,
            universe: 10
        })
    );
}

/// `FaultSet::random` at the extremes: zero faults, and the full universe.
#[test]
fn random_fault_set_boundary_sizes() {
    let mut rng = seeded_rng(11);
    let none = FaultSet::random(16, 0, &mut rng).expect("0 <= 16");
    assert!(none.is_empty());
    assert_eq!(none.healthy().len(), 16);

    let all = FaultSet::random(16, 16, &mut rng).expect("16 <= 16");
    assert_eq!(all.len(), 16);
    assert!(all.healthy().is_empty());
    assert_eq!(all.iter().collect::<Vec<_>>(), (0..16).collect::<Vec<_>>());
}

/// Random fault sets drawn at exactly the budget always reconfigure: the
/// whole point of (k, G)-tolerance, exercised at the k-faults boundary.
#[test]
fn full_budget_random_fault_sets_always_reconfigure() {
    let (h, k) = (4, 3);
    let ft = FtDeBruijn2::new(h, k);
    let mut rng = seeded_rng(13);
    for _ in 0..50 {
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        let phi = ft
            .reconfigure_verified(&faults)
            .expect("Theorem 1 at the k-fault boundary");
        assert!(unused_spares(&phi, &faults).is_empty());
        assert!(displacements(&phi).iter().all(|&d| d <= k));
    }
}
