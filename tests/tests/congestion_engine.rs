//! Cross-crate acceptance tests for the cycle-level congestion engine:
//! analytic completion bounds, port-limit saturation, port-model ordering,
//! per-cycle conservation, agreement with the static routing kernels, and
//! the full mid-run-fault → online-reconfiguration → drain story.

use ftdb_core::FtDeBruijn2;
use ftdb_graph::Embedding;
use ftdb_sim::congestion::{run_recovery, CongestionConfig, CongestionSim, FaultResponse};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::routing::run_logical_workload;
use ftdb_sim::workload;
use ftdb_topology::DeBruijn2;

fn run_workload(
    db: &DeBruijn2,
    port: PortModel,
    pairs: &[(usize, usize)],
) -> (ftdb_sim::congestion::CongestionReport, CongestionSim) {
    let machine = PhysicalMachine::new(db.graph().clone(), port);
    let mut sim = CongestionSim::new(machine, CongestionConfig::default());
    sim.load_oblivious(db, &Embedding::identity(db.node_count()), pairs);
    let report = sim.run();
    (report, sim)
}

#[test]
fn healthy_permutation_completes_within_analytic_order_bounds() {
    // A random permutation on B(2,h) keeps traffic spread: total flits is at
    // most n·h over 2n-ish directed links, so the makespan stays within a
    // small multiple of the h-cycle lower bound — far below the n·h serial
    // bound. `h + n` is a generous, analytic, load-balance-order cap.
    for h in [4usize, 6, 8] {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let mut rng = ftdb_tests::seeded_rng(h as u64);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let (report, _) = run_workload(&db, PortModel::MultiPort, &pairs);
        assert!(report.completed);
        assert_eq!(report.delivered, n as u64);
        assert!(
            (report.cycles as usize) >= 1 && (report.cycles as usize) <= h + n,
            "h={h}: {} cycles outside (0, h + n = {}]",
            report.cycles,
            h + n
        );
        // The longest packet needs at least its hop count in cycles.
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let stats = run_logical_workload(&db, &Embedding::identity(n), &machine, &pairs);
        assert!(report.cycles as usize >= stats.max_hops);
    }
}

#[test]
fn congestion_engine_agrees_with_static_kernels_on_flit_totals() {
    // Contention delays flits but never creates or destroys them: the total
    // moved flits equals the static kernels' total hop count, per workload.
    let h = 6;
    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    let placement = Embedding::identity(n);
    let mut rng = ftdb_tests::seeded_rng(77);
    for pairs in [
        workload::permutation_pairs(n, &mut rng),
        workload::bit_reversal_pairs(h),
        workload::all_to_one(n, 3),
        workload::uniform_pairs(n, 2 * n, &mut rng),
    ] {
        let stats = run_logical_workload(&db, &placement, &machine, &pairs);
        for port in [PortModel::MultiPort, PortModel::SinglePort] {
            let (report, _) = run_workload(&db, port, &pairs);
            assert!(report.completed);
            assert_eq!(report.delivered, stats.delivered);
            assert_eq!(report.total_flits, stats.total_hops, "port={port:?}");
        }
    }
}

#[test]
fn conservation_invariant_holds_every_cycle_with_dynamic_faults() {
    let h = 5;
    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
    let mut sim = CongestionSim::new(
        machine,
        CongestionConfig {
            fault_response: FaultResponse::RerouteAdaptive,
            ..CongestionConfig::default()
        },
    );
    let mut rng = ftdb_tests::seeded_rng(13);
    let pairs = workload::uniform_pairs(n, 4 * n, &mut rng);
    sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
    sim.schedule_fault(2, 7);
    sim.schedule_fault(5, 20);
    let mut guard = 0u32;
    loop {
        let (injected, delivered, dropped, in_flight) = sim.counts();
        assert_eq!(
            delivered + dropped + in_flight,
            injected,
            "conservation broken at cycle {}",
            sim.cycle()
        );
        if in_flight == 0 {
            break;
        }
        sim.step();
        guard += 1;
        assert!(guard < 10_000, "run failed to drain");
    }
}

#[test]
fn hot_spot_throughput_saturates_at_the_roots_link_limit() {
    // Oblivious routes to root r all enter over r's predecessor links; the
    // drain rate is capped by the number of distinct last-hop links, so the
    // makespan is bounded below by (senders / in-degree) and the engine
    // must actually approach that saturation rate.
    let h = 6;
    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let root = 5;
    let (report, sim) = run_workload(&db, PortModel::MultiPort, &workload::all_to_one(n, root));
    assert!(report.completed);
    assert_eq!(report.delivered, n as u64);
    let in_degree = db.graph().degree(root) as u64;
    let senders = (n - 1) as u64;
    let lower = senders.div_ceil(in_degree);
    assert!(
        report.cycles as u64 >= lower,
        "{} cycles beat the root's port limit ({lower})",
        report.cycles
    );
    // Saturation: the run must not be more than ~2x above the cap either —
    // the bottleneck links stay busy nearly every cycle.
    assert!(
        report.cycles as u64 <= 2 * lower + h as u64 + 2,
        "{} cycles: root links are idling (cap {lower})",
        report.cycles
    );
    // The single heaviest link carries at least an even share.
    assert!(sim.max_link_load() >= senders / in_degree);
}

#[test]
fn single_port_is_measurably_slower_than_multi_port() {
    let h = 6;
    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let mut rng = ftdb_tests::seeded_rng(29);
    let pairs = workload::uniform_pairs(n, 4 * n, &mut rng);
    let (multi, _) = run_workload(&db, PortModel::MultiPort, &pairs);
    let (single, _) = run_workload(&db, PortModel::SinglePort, &pairs);
    assert!(multi.completed && single.completed);
    assert_eq!(multi.delivered, single.delivered);
    assert!(
        single.cycles > multi.cycles,
        "SinglePort ({}) must be slower than MultiPort ({})",
        single.cycles,
        multi.cycles
    );
    assert!(single.flits_per_cycle() < multi.flits_per_cycle());
}

#[test]
fn mid_run_fault_with_online_reconfiguration_delivers_all_survivors() {
    for (h, k, fault_cycle) in [(4usize, 1usize, 1u32), (5, 2, 3), (6, 3, 2)] {
        let ft = FtDeBruijn2::new(h, k);
        let n = ft.target().node_count();
        let mut rng = ftdb_tests::seeded_rng((h * 31 + k) as u64);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let schedule: Vec<(u32, usize)> = (0..k)
            .map(|i| (fault_cycle, (i * 13 + 2) % ft.node_count()))
            .collect();
        let outcome = run_recovery(
            &ft,
            &pairs,
            &schedule,
            PortModel::MultiPort,
            CongestionConfig {
                fault_response: FaultResponse::RerouteAdaptive,
                ..CongestionConfig::default()
            },
        )
        .expect("schedule within the fault budget");
        assert!(outcome.report.completed, "h={h} k={k}");
        // Everything not hosted on a dying processor arrives.
        assert_eq!(
            outcome.report.delivered + outcome.lost_on_dead_nodes,
            n as u64,
            "h={h} k={k}"
        );
        assert_eq!(outcome.report.dropped, outcome.lost_on_dead_nodes);
        // Recovery latency is measured and bounded: the drain finishes in
        // cycles-order of the surviving traffic, not the cap.
        assert!(outcome.drain_cycles >= 1);
        assert!((outcome.drain_cycles as usize) < 4 * n, "h={h} k={k}");
    }
}

#[test]
fn over_budget_fault_schedules_are_rejected_not_panicked() {
    let ft = FtDeBruijn2::new(4, 1);
    let result = run_recovery(
        &ft,
        &[(0, 9)],
        &[(1, 2), (3, 4)],
        PortModel::MultiPort,
        CongestionConfig::default(),
    );
    assert!(matches!(
        result,
        Err(ftdb_sim::SimError::FaultBudgetExceeded {
            faults: 2,
            budget: 1
        })
    ));
}
