//! The paper's headline quantitative claims, checked verbatim.
//!
//! Each test corresponds to a sentence of the paper (quoted in the test
//! body) so that the reproduction can be audited claim by claim.

use ftdb_core::baseline::SpBaseline;
use ftdb_core::{
    BusArchitecture, FtDeBruijn2, FtDeBruijnM, FtShuffleExchange, NaturalFtShuffleExchange,
};
use ftdb_topology::labels::pow_nodes;
use ftdb_topology::{DeBruijn2, DeBruijnM, ShuffleExchange};

#[test]
fn claim_minimum_number_of_nodes() {
    // "All of our constructions use the minimum number of nodes, so if the
    //  target graph G has N nodes and if k node faults must be tolerated,
    //  our fault-tolerant graph G' will have exactly N + k nodes."
    for (h, k) in [(3, 1), (4, 2), (5, 3), (6, 5)] {
        assert_eq!(FtDeBruijn2::new(h, k).node_count(), (1 << h) + k);
        assert_eq!(
            NaturalFtShuffleExchange::new(h, k).node_count(),
            (1 << h) + k
        );
    }
    for (m, h, k) in [(3, 3, 2), (4, 2, 1), (5, 2, 4)] {
        assert_eq!(FtDeBruijnM::new(m, h, k).node_count(), pow_nodes(m, h) + k);
    }
}

#[test]
fn claim_degrees_independent_of_n() {
    // "All of our constructions also have degrees that are independent of N,
    //  the number of nodes in the target graph."
    let k = 2;
    let degrees: Vec<usize> = (3..=9)
        .map(|h| FtDeBruijn2::new(h, k).graph().max_degree())
        .collect();
    // The degree may vary slightly for tiny h (block overlaps), but from a
    // modest size on it stabilises and never exceeds the bound.
    assert!(degrees.iter().all(|&d| d <= 4 * k + 4));
    let tail: Vec<usize> = degrees[2..].to_vec();
    assert!(
        tail.windows(2).all(|w| w[0] == w[1]),
        "degrees kept changing with N: {degrees:?}"
    );
}

#[test]
fn claim_base2_construction_figures() {
    // "our constructions for fault-tolerant base-2 de Bruijn graphs have
    //  N + k nodes and degree 4k + 4"
    for (h, k) in [(3, 1), (4, 2), (5, 4), (6, 3)] {
        let ft = FtDeBruijn2::new(h, k);
        assert_eq!(ft.node_count(), (1 << h) + k);
        assert!(ft.graph().max_degree() <= 4 * k + 4);
    }
}

#[test]
fn claim_base_m_construction_figures() {
    // "our constructions for base-m de Bruijn graphs have N + k nodes and
    //  degree 4(m - 1)k + 2m"
    for (m, h, k) in [(3, 3, 1), (3, 3, 3), (4, 3, 2), (5, 2, 2), (8, 2, 1)] {
        let ft = FtDeBruijnM::new(m, h, k);
        assert_eq!(ft.node_count(), pow_nodes(m, h) + k);
        assert!(ft.graph().max_degree() <= 4 * (m - 1) * k + 2 * m);
    }
}

#[test]
fn claim_samatham_pradhan_comparison() {
    // "When the target graph is a base-2 de Bruijn graph with N nodes, their
    //  construction yields a fault-tolerant graph with N^{log2(2(k+1))}
    //  nodes and degree 4k + 2. … Thus, our constructions use far fewer
    //  nodes and yet have only slightly larger degrees."
    for (h, k) in [(4usize, 1usize), (5, 2), (6, 3), (8, 2), (10, 4)] {
        let ours_nodes = (1u128 << h) + k as u128;
        let sp = SpBaseline::new(2, h, k);
        assert!(sp.nodes() > ours_nodes, "h={h}, k={k}");
        // "far fewer": the ratio grows without bound; already ≥ N/2 here.
        assert!(sp.nodes() / ours_nodes >= (1u128 << h) / 4);
        // "only slightly larger degrees": ours exceeds theirs by exactly 2
        // in the base-2 case (4k+4 vs 4k+2).
        assert_eq!(4 * k + 4, sp.quoted_degree() + 2);
    }
}

#[test]
fn claim_shuffle_exchange_via_debruijn_degree() {
    // "the fault-tolerant graph for a shuffle-exchange network, which
    //  tolerates up to k node faults, also has a degree 4k + 4"
    for (h, k) in [(4, 1), (4, 2), (5, 1), (5, 3)] {
        let ft = FtShuffleExchange::new(h, k).unwrap();
        assert!(ft.graph().max_degree() <= 4 * k + 4);
        assert_eq!(ft.node_count(), (1 << h) + k);
    }
}

#[test]
fn claim_natural_labeling_is_worse() {
    // "applying the technique of the fault-tolerant de Bruijn graph to the
    //  shuffle-exchange network with a natural labeling will yield a graph
    //  of degree 6k + 4" — i.e. strictly worse than 4k + 4. Our edge-exact
    //  derivation measures 6k + 6 in the worst case; either way the natural
    //  labeling never beats the de Bruijn route.
    for (h, k) in [(4, 1), (4, 2), (5, 1), (5, 2)] {
        let natural = NaturalFtShuffleExchange::new(h, k).graph().max_degree();
        let via_db = FtShuffleExchange::new(h, k).unwrap().graph().max_degree();
        assert!(
            natural >= 6 * k + 4 - 2,
            "h={h}, k={k}: natural degree {natural}"
        );
        assert!(
            natural <= 6 * k + 6,
            "h={h}, k={k}: natural degree {natural}"
        );
        assert!(via_db < natural, "h={h}, k={k}");
    }
}

#[test]
fn claim_corollary_2_and_4() {
    // Corollary 2: B^1_{2,h} has 2^h + 1 nodes and degree at most 8.
    for h in 3..=8 {
        let ft = FtDeBruijn2::new(h, 1);
        assert_eq!(ft.node_count(), (1 << h) + 1);
        assert!(ft.graph().max_degree() <= 8);
    }
    // Corollary 4: B^1_{m,h} has m^h + 1 nodes and degree at most 6m − 4.
    for (m, h) in [(3, 3), (4, 3), (5, 2), (6, 2), (8, 2)] {
        let ft = FtDeBruijnM::new(m, h, 1);
        assert_eq!(ft.node_count(), pow_nodes(m, h) + 1);
        assert!(ft.graph().max_degree() <= 6 * m - 4);
    }
}

#[test]
fn claim_bus_degree_2k_plus_3() {
    // "This use of buses results in a fault-tolerant architecture with
    //  degree 2k + 3."
    for (h, k) in [(3, 1), (4, 1), (4, 2), (5, 3), (6, 2)] {
        let arch = BusArchitecture::new(h, k);
        assert!(arch.max_bus_degree() <= 2 * k + 3, "h={h}, k={k}");
    }
}

#[test]
fn claim_buses_preserve_connectivity() {
    // "all of the connectivity of the graph B_{2,h} will be maintained if
    //  each such pair of edges is replaced with a single bus" — and likewise
    //  for the fault-tolerant graph.
    for (h, k) in [(3, 0), (4, 0), (4, 2), (5, 1)] {
        let ft = FtDeBruijn2::new(h, k);
        let arch = BusArchitecture::from_ft(&ft);
        assert!(ftdb_graph::properties::same_edge_set(
            &arch.implied_graph(),
            ft.graph()
        ));
    }
}

#[test]
fn claim_target_topologies_have_the_textbook_degrees() {
    // Background facts the paper builds on: the de Bruijn graph has degree 4
    // (base 2) / 2m (base m), the shuffle-exchange degree 3, and both have
    // logarithmic diameter.
    for h in 3..=8 {
        assert!(DeBruijn2::new(h).graph().max_degree() <= 4);
        assert!(ShuffleExchange::new(h).graph().max_degree() <= 3);
    }
    for (m, h) in [(3, 3), (4, 3), (5, 2)] {
        assert!(DeBruijnM::new(m, h).graph().max_degree() <= 2 * m);
    }
}
