//! Differential property test: the event-driven wake-list congestion core
//! against the retained naive full-rescan reference.
//!
//! The wake-list engine (`EngineKind::WakeList`, the default) is a
//! reorganisation of the same cycle semantics — a packet that provably
//! cannot move parks on its link slot's blocked queue instead of being
//! rescanned — so for ANY workload, fault schedule, port model and
//! flow-control mode it must produce results that are byte-identical to the
//! naive scan (`EngineKind::NaiveScan`): the same `CongestionReport`
//! (including `deadlocked` and the latency distribution), the same
//! per-link flit counts, and the same per-packet outcome stamps.

use ftdb_analysis::sim_experiments::{sim5_load_sweep, SweepScenario};
use ftdb_graph::Embedding;
use ftdb_sim::congestion::{
    measure_open_loop, CongestionConfig, CongestionReport, CongestionSim, EngineKind,
    FaultResponse, FlowControl, RouteSource, ShardedSim, Switching,
};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::workload::{self, InjectionProcess, OpenLoopSpec};
use ftdb_topology::DeBruijn2;
use proptest::prelude::*;
use rand::RngExt;

/// Everything observable about one finished run.
#[derive(Debug, PartialEq)]
struct RunOutcome {
    report: CongestionReport,
    report_text: String,
    link_loads: Vec<(usize, usize, u64)>,
    counts: (u64, u64, u64, u64),
    outcomes: Vec<(u32, Option<u32>, Option<u32>)>,
}

/// Builds, loads, faults and drains one engine, collecting every
/// observable output. Stepping manually (instead of `run`) exercises the
/// deadlock-detection path of `run_until` through the same entry point the
/// sweep drivers use.
#[allow(clippy::too_many_arguments)]
fn drive(
    engine: EngineKind,
    route_source: RouteSource,
    h: usize,
    port: PortModel,
    flow: FlowControl,
    response: FaultResponse,
    pairs: &[(usize, usize)],
    schedule: &[(u32, usize)],
    timed: Option<&[(u32, usize, usize)]>,
) -> RunOutcome {
    let db = DeBruijn2::new(h);
    let machine = PhysicalMachine::new(db.graph().clone(), port);
    let config = CongestionConfig {
        flow_control: flow,
        fault_response: response,
        engine,
        route_source,
        // Small cap so pathological schedules still finish fast; identical
        // caps on both engines keep truncated runs comparable too.
        max_cycles: 5_000,
    };
    let mut sim = CongestionSim::new(machine, config);
    let placement = Embedding::identity(db.node_count());
    match timed {
        Some(injections) => sim.load_oblivious_timed(&db, &placement, injections),
        None => sim.load_oblivious(&db, &placement, pairs),
    }
    for &(cycle, node) in schedule {
        sim.schedule_fault(cycle, node);
    }
    sim.run_to_quiescence();
    let report = sim.report();
    // The vendored serde derive is annotation-only, so "byte-identical" is
    // pinned on the deterministic Debug rendering of the full report.
    let report_text = format!("{report:?}");
    sim.check_credit_conservation()
        .expect("credit conservation at quiescence");
    let outcomes = (0..sim.counts().0 as usize)
        .map(|id| sim.packet_outcome(id))
        .collect();
    RunOutcome {
        report,
        report_text,
        link_loads: sim.link_loads(),
        counts: sim.counts(),
        outcomes,
    }
}

#[allow(clippy::too_many_arguments)]
fn assert_engines_agree(
    h: usize,
    port: PortModel,
    flow: FlowControl,
    response: FaultResponse,
    pairs: &[(usize, usize)],
    schedule: &[(u32, usize)],
    timed: Option<&[(u32, usize, usize)]>,
) {
    let wake = drive(
        EngineKind::WakeList,
        RouteSource::Implicit,
        h,
        port,
        flow,
        response,
        pairs,
        schedule,
        timed,
    );
    let naive = drive(
        EngineKind::NaiveScan,
        RouteSource::Implicit,
        h,
        port,
        flow,
        response,
        pairs,
        schedule,
        timed,
    );
    assert_report_fields_equal(&wake.report, &naive.report);
    assert_eq!(
        wake, naive,
        "engines diverged (h={h}, {port:?}, {flow:?}, {response:?})"
    );
    // "Byte-identical" taken literally: the rendered reports match too.
    assert_eq!(wake.report_text, naive.report_text);
    // Route-source differential: the O(1) digit-shift generator (the
    // default above) must reproduce the materialized-path engine
    // byte-for-byte on the same workload — including mid-run re-routes,
    // which materialize implicit packets into the segment side table.
    let materialized = drive(
        EngineKind::WakeList,
        RouteSource::Materialized,
        h,
        port,
        flow,
        response,
        pairs,
        schedule,
        timed,
    );
    assert_report_fields_equal(&wake.report, &materialized.report);
    assert_eq!(
        wake, materialized,
        "route sources diverged (h={h}, {port:?}, {flow:?}, {response:?})"
    );
    // Shard differential: the partitioned engine must reproduce the
    // single-table run byte-for-byte for every shard count — and a
    // threaded run must match its own serial run (one worker per shard,
    // deterministic (dst, src) barrier merge).
    for (shards, threads) in [(1usize, 1usize), (2, 1), (4, 1), (4, 2)] {
        let sharded = drive_sharded(
            shards, threads, h, port, flow, response, pairs, schedule, timed,
        );
        assert_report_fields_equal(&wake.report, &sharded.report);
        assert_eq!(
            (
                &wake.report,
                &wake.report_text,
                &wake.counts,
                &wake.outcomes
            ),
            (
                &sharded.report,
                &sharded.report_text,
                &sharded.counts,
                &sharded.outcomes
            ),
            "sharded engine diverged (h={h}, {port:?}, {flow:?}, {response:?}, \
             shards={shards}, threads={threads})"
        );
    }
}

/// The sharded observables: everything [`drive`] collects except the
/// per-link flit map and the credit-conservation probe, which the sharded
/// engine does not expose (its equivalence is pinned through the report,
/// the counts and every per-packet outcome stamp instead).
struct ShardedOutcome {
    report: CongestionReport,
    report_text: String,
    counts: (u64, u64, u64, u64),
    outcomes: Vec<(u32, Option<u32>, Option<u32>)>,
}

#[allow(clippy::too_many_arguments)]
fn drive_sharded(
    shards: usize,
    threads: usize,
    h: usize,
    port: PortModel,
    flow: FlowControl,
    response: FaultResponse,
    pairs: &[(usize, usize)],
    schedule: &[(u32, usize)],
    timed: Option<&[(u32, usize, usize)]>,
) -> ShardedOutcome {
    let db = DeBruijn2::new(h);
    let machine = PhysicalMachine::new(db.graph().clone(), port);
    let config = CongestionConfig {
        flow_control: flow,
        fault_response: response,
        engine: EngineKind::WakeList,
        route_source: RouteSource::Implicit,
        max_cycles: 5_000,
    };
    let mut sim = ShardedSim::new(machine, config, shards, threads);
    let placement = Embedding::identity(db.node_count());
    match timed {
        Some(injections) => sim.load_oblivious_timed(&db, &placement, injections),
        None => sim.load_oblivious(&db, &placement, pairs),
    }
    for &(cycle, node) in schedule {
        sim.schedule_fault(cycle, node);
    }
    sim.run_to_quiescence();
    let report = sim.report();
    let report_text = format!("{report:?}");
    let outcomes = (0..sim.counts().0 as usize)
        .map(|id| sim.packet_outcome(id))
        .collect();
    ShardedOutcome {
        report,
        report_text,
        counts: sim.counts(),
        outcomes,
    }
}

/// Field-by-field equality over every public `CongestionReport` field,
/// with the field's name in the failure message. The destructuring is
/// exhaustive (no `..`), so adding a report field fails to compile here
/// until it is compared — and `ftdb-analyzer`'s `diff-coverage` audit
/// cross-checks the struct definition against this file, so the field
/// cannot be waved through with a `..` either.
fn assert_report_fields_equal(wake: &CongestionReport, naive: &CongestionReport) {
    let CongestionReport {
        cycles,
        injected,
        delivered,
        dropped,
        total_flits,
        completed,
        deadlocked,
        vc_flits,
        vc_hol_blocked_cycles,
        latency,
    } = wake;
    assert_eq!(*cycles, naive.cycles, "cycles diverged");
    assert_eq!(*injected, naive.injected, "injected diverged");
    assert_eq!(*delivered, naive.delivered, "delivered diverged");
    assert_eq!(*dropped, naive.dropped, "dropped diverged");
    assert_eq!(*total_flits, naive.total_flits, "total_flits diverged");
    assert_eq!(*completed, naive.completed, "completed diverged");
    assert_eq!(*deadlocked, naive.deadlocked, "deadlocked diverged");
    assert_eq!(*vc_flits, naive.vc_flits, "vc_flits diverged");
    assert_eq!(
        *vc_hol_blocked_cycles, naive.vc_hol_blocked_cycles,
        "vc_hol_blocked_cycles diverged"
    );
    assert_eq!(*latency, naive.latency, "latency summary diverged");
}

/// Flow-control generator: `depth == 0` is infinite buffering; otherwise
/// `vc_sel` picks the legacy single-channel credit mode (0) or
/// `VirtualChannel` with `vcs` ∈ {1, 2, 4} (1..=3), and `worm_sel` picks
/// store-and-forward (0) or wormhole trains of 2 or 4 flits (1, 2).
fn flow_of(depth: u32, vc_sel: u8, worm_sel: u8) -> FlowControl {
    if depth == 0 {
        FlowControl::Infinite
    } else if vc_sel == 0 {
        FlowControl::CreditBased {
            buffer_depth: depth,
        }
    } else {
        FlowControl::VirtualChannel {
            vcs: 1u32 << (vc_sel - 1),
            buffer_depth: depth,
            switching: match worm_sel {
                0 => Switching::StoreAndForward,
                1 => Switching::Wormhole { packet_flits: 2 },
                _ => Switching::Wormhole { packet_flits: 4 },
            },
        }
    }
}

fn port_of(single: bool) -> PortModel {
    if single {
        PortModel::SinglePort
    } else {
        PortModel::MultiPort
    }
}

fn response_of(reroute: bool) -> FaultResponse {
    if reroute {
        FaultResponse::RerouteAdaptive
    } else {
        FaultResponse::Drop
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch workloads: random pair sets, random fault schedules, both
    /// flow-control modes, both port models, both fault responses.
    #[test]
    fn engines_agree_on_random_batch_workloads(
        h in 3usize..6,
        depth in 0u32..4,
        vc_sel in 0u8..4,
        worm_sel in 0u8..3,
        single_port in 0u8..2,
        reroute in 0u8..2,
        packets in 1usize..200,
        faults in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let n = 1usize << h;
        let mut rng = ftdb_tests::seeded_rng(seed);
        let pairs = workload::uniform_pairs(n, packets, &mut rng);
        let schedule: Vec<(u32, usize)> = (0..faults)
            .map(|_| (rng.random_range(0..12) as u32, rng.random_range(0..n)))
            .collect();
        assert_engines_agree(
            h,
            port_of(single_port == 1),
            flow_of(depth, vc_sel, worm_sel),
            response_of(reroute == 1),
            &pairs,
            &schedule,
            None,
        );
    }

    /// Hot-spot traffic at shallow buffer depths: the deadlock-detection
    /// regime. `deadlocked`, the cycle count at detection and the per-link
    /// flit counts all have to match.
    #[test]
    fn engines_agree_on_deadlocking_hotspots(
        h in 3usize..6,
        depth in 1u32..3,
        vc_sel in 0u8..4,
        worm_sel in 0u8..3,
        root_seed in 0usize..64,
        single_port in 0u8..2,
    ) {
        let n = 1usize << h;
        let pairs = workload::all_to_one(n, root_seed % n);
        assert_engines_agree(
            h,
            port_of(single_port == 1),
            flow_of(depth, vc_sel, worm_sel),
            FaultResponse::Drop,
            &pairs,
            &[],
            None,
        );
    }

    /// Open-loop timed injection across the load range, with mid-run
    /// faults: injection queues, credit accounting and fault kills all
    /// interleave with the parked queues.
    #[test]
    fn engines_agree_on_open_loop_schedules(
        h in 3usize..6,
        depth in 0u32..4,
        vc_sel in 0u8..4,
        worm_sel in 0u8..3,
        load_pct in 5u32..95,
        faults in 0usize..3,
        reroute in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let n = 1usize << h;
        let spec = OpenLoopSpec {
            offered_load: load_pct as f64 / 100.0,
            process: InjectionProcess::Bernoulli,
            warmup_cycles: 10,
            measure_cycles: 20,
            drain_cycles: 60,
            seed,
        };
        let injections = workload::open_loop_injections(n, &spec);
        let mut rng = ftdb_tests::seeded_rng(seed ^ 0x5EED);
        let schedule: Vec<(u32, usize)> = (0..faults)
            .map(|_| (rng.random_range(0..25) as u32, rng.random_range(0..n)))
            .collect();
        assert_engines_agree(
            h,
            PortModel::MultiPort,
            flow_of(depth, vc_sel, worm_sel),
            response_of(reroute == 1),
            &[],
            &schedule,
            Some(&injections),
        );
    }
}

/// The ROADMAP's crisp acceptance test for virtual channels: the depth-1
/// hot-spot workload that hard-deadlocks under single-channel credit flow
/// (see `depth_one_hot_spot_deadlocks_and_is_detected`) must drain to
/// completion once `vcs >= 2` dateline-ordered channels multiplex each
/// link — across both engines, both route sources and every shard/thread
/// configuration, byte-identically — while `vcs = 1` (a single virtual
/// channel is just credit flow with extra bookkeeping) must still deadlock,
/// so the detector stays honest.
#[test]
fn virtual_channels_break_the_depth_one_hotspot_deadlock() {
    let h = 5;
    let n = 1usize << h;
    let pairs = workload::all_to_one(n, 2);
    for port in [PortModel::MultiPort, PortModel::SinglePort] {
        for (vcs, wants_deadlock) in [(1u32, true), (2, false), (4, false)] {
            let flow = FlowControl::VirtualChannel {
                vcs,
                buffer_depth: 1,
                switching: Switching::StoreAndForward,
            };
            // Pin every engine variant to the same report first…
            assert_engines_agree(h, port, flow, FaultResponse::Drop, &pairs, &[], None);
            // …then pin what that report says.
            let run = drive(
                EngineKind::WakeList,
                RouteSource::Implicit,
                h,
                port,
                flow,
                FaultResponse::Drop,
                &pairs,
                &[],
                None,
            );
            assert_eq!(
                run.report.deadlocked, wants_deadlock,
                "vcs={vcs} port={port:?}"
            );
            if !wants_deadlock {
                assert!(run.report.completed, "vcs={vcs} port={port:?}");
                assert_eq!(
                    run.report.delivered, n as u64,
                    "every packet must drain (vcs={vcs}, port={port:?})"
                );
            } else {
                assert!(
                    run.report.delivered < n as u64,
                    "a deadlocked hotspot cannot deliver everything"
                );
            }
        }
    }
}

/// The measurement layer on top: a full `measure_open_loop` window report
/// must match between engines, at a load below and a load beyond the
/// saturation knee.
#[test]
fn open_loop_window_reports_match_across_engines() {
    let db = DeBruijn2::new(5);
    let n = db.node_count();
    for offered_load in [0.1, 0.6] {
        let spec = OpenLoopSpec {
            offered_load,
            process: InjectionProcess::Bernoulli,
            warmup_cycles: 40,
            measure_cycles: 80,
            drain_cycles: 160,
            seed: 99,
        };
        let injections = workload::open_loop_injections(n, &spec);
        let mut reports = Vec::new();
        for engine in [EngineKind::WakeList, EngineKind::NaiveScan] {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = CongestionSim::new(
                machine,
                CongestionConfig {
                    flow_control: FlowControl::CreditBased { buffer_depth: 2 },
                    engine,
                    ..CongestionConfig::default()
                },
            );
            sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
            reports.push(measure_open_loop(&mut sim, &spec));
        }
        assert_eq!(reports[0], reports[1], "load {offered_load}");
    }
}

/// The sweep driver end to end: a SIM5 curve is a pure function of its
/// scenario and seed — and the engines agree point by point (the sweep
/// always runs the default wake-list engine; this pins the driver's output
/// against a manually-driven naive run at the same loads).
#[test]
fn sweep_points_reproduce_under_both_engines() {
    let scenario = SweepScenario {
        h: 5,
        k: 1,
        fault_count: 1,
        port: PortModel::MultiPort,
        flow: FlowControl::CreditBased { buffer_depth: 2 },
    };
    let loads = [0.15, 0.55];
    let a = sim5_load_sweep(&scenario, &loads, 21);
    let b = sim5_load_sweep(&scenario, &loads, 21);
    assert_eq!(a, b, "sweep must be deterministic");
    assert!(a[0].accepted >= a[1].accepted - 1e-9);
}
