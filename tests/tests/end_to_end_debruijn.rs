//! End-to-end integration: fault-tolerant de Bruijn graphs across the whole
//! stack (topology → core → verification → simulation).

use ftdb_core::verify::{verify_exhaustive, verify_up_to};
use ftdb_core::{FaultSet, FtDeBruijn2, FtDeBruijnM};
use ftdb_graph::{traversal, Embedding};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::routing::run_logical_workload;
use ftdb_sim::workload;
use ftdb_topology::DeBruijn2;

#[test]
fn base2_construction_is_exhaustively_tolerant_for_small_instances() {
    // Theorem 1, checked over every fault set, for a family of instances.
    for (h, k) in [(3, 1), (3, 2), (3, 3), (4, 1), (4, 2)] {
        let ft = FtDeBruijn2::new(h, k);
        let report = verify_exhaustive(ft.target().graph(), ft.graph(), k, 4);
        assert!(
            report.is_tolerant(),
            "B^{k}(2,{h}) failed for fault sets {:?}",
            report.failures
        );
        let expected = ftdb_core::fault::Combinations::total(ft.node_count(), k);
        assert_eq!(u128::from(report.checked), expected);
    }
}

#[test]
fn base_m_construction_is_exhaustively_tolerant_for_small_instances() {
    for (m, h, k) in [(3, 3, 1), (3, 3, 2), (4, 2, 1), (4, 2, 2), (5, 2, 1)] {
        let ft = FtDeBruijnM::new(m, h, k);
        let report = verify_exhaustive(ft.target().graph(), ft.graph(), k, 4);
        assert!(report.is_tolerant(), "B^{k}({m},{h}) not tolerant");
    }
}

#[test]
fn tolerance_holds_for_every_fault_count_up_to_k() {
    let ft = FtDeBruijn2::new(4, 3);
    let reports = verify_up_to(ft.target().graph(), ft.graph(), 3, 4);
    assert_eq!(reports.len(), 4);
    for (faults, report) in reports.iter().enumerate() {
        assert!(report.is_tolerant(), "failed at {faults} faults");
    }
}

#[test]
fn reconfigured_machine_routes_an_entire_permutation() {
    let ft = FtDeBruijn2::new(6, 3);
    let db = ft.target().clone();
    let mut rng = ftdb_tests::seeded_rng(11);
    let faults = FaultSet::random(ft.node_count(), 3, &mut rng).expect("k within node count");
    let placement = ft.reconfigure_verified(&faults).unwrap();
    let machine = PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
    let pairs = workload::permutation_pairs(db.node_count(), &mut rng);
    let stats = run_logical_workload(&db, &placement, &machine, &pairs);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.delivered as usize, db.node_count());
    assert!(stats.max_hops <= db.h());
}

#[test]
fn unprotected_machine_loses_packets_under_the_same_faults() {
    let db = DeBruijn2::new(6);
    let mut rng = ftdb_tests::seeded_rng(11);
    let faults = FaultSet::random(db.node_count(), 3, &mut rng).expect("k within node count");
    let machine = PhysicalMachine::with_faults(db.graph().clone(), faults, PortModel::MultiPort);
    let pairs = workload::permutation_pairs(db.node_count(), &mut rng);
    let stats = run_logical_workload(&db, &Embedding::identity(db.node_count()), &machine, &pairs);
    assert!(
        stats.dropped > 0,
        "faults must cost the unprotected machine packets"
    );
}

#[test]
fn surviving_subgraph_is_connected_after_max_faults() {
    // Not claimed by the paper, but a useful operational property: after
    // removing any k nodes the embedded target keeps the healthy part that
    // hosts it connected (the target de Bruijn graph is connected).
    let ft = FtDeBruijn2::new(5, 2);
    let mut rng = ftdb_tests::seeded_rng(3);
    for _ in 0..25 {
        let faults = FaultSet::random(ft.node_count(), 2, &mut rng).expect("k within node count");
        let phi = ft.reconfigure_verified(&faults).unwrap();
        // Build the image subgraph and check connectivity.
        let mut keep = ftdb_graph::BitSet::new(ft.node_count());
        for &v in phi.as_slice() {
            keep.insert(v);
        }
        let induced = ftdb_graph::ops::induced_subgraph(ft.graph(), &keep);
        assert!(traversal::is_connected(&induced.graph));
        assert_eq!(induced.graph.node_count(), ft.target().node_count());
    }
}

#[test]
fn displacements_never_exceed_k_in_practice() {
    let ft = FtDeBruijn2::new(7, 5);
    let mut rng = ftdb_tests::seeded_rng(5);
    for _ in 0..50 {
        let faults = FaultSet::random(ft.node_count(), 5, &mut rng).expect("k within node count");
        let phi = ft.reconfigure(&faults);
        let deltas = ftdb_core::reconfig::displacements(&phi);
        assert!(deltas.iter().all(|&d| d <= 5));
        assert!(deltas.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn edge_faults_are_handled_by_marking_an_endpoint() {
    // The paper: "edge faults can be tolerated by viewing a node that is
    // incident to the faulty edge as being faulty."
    let ft = FtDeBruijn2::new(4, 2);
    let edges: Vec<(usize, usize)> = ft.graph().edges().take(2).collect();
    let faults = FaultSet::from_edge_faults(ft.node_count(), edges.iter().copied());
    assert!(faults.len() <= 2);
    let phi = ft.reconfigure_verified(&faults).unwrap();
    for (u, v) in edges {
        let dead = u.min(v);
        assert!(phi.as_slice().iter().all(|&img| img != dead));
    }
}
