//! Verifies the allocation-free guarantees of the routing and verification
//! kernels with a counting global allocator: after a warm-up pass that sizes
//! the scratch buffers, routing thousands of packets must not touch the
//! allocator at all.

use ftdb_core::FaultSet;
use ftdb_graph::Embedding;
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::routing::{
    route_adaptive_into, route_logical_debruijn_into, run_logical_workload, RouteScratch,
};
use ftdb_sim::workload;
use ftdb_topology::DeBruijn2;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator and counts every allocation/reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The allocation counter is process-global, so the counting tests must not
/// interleave: each takes this lock for its measured region.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `region` up to five times and asserts that at least one run performs
/// zero allocations. A genuine per-packet allocation fires thousands of
/// times in every run; a stray allocation from the test harness' own
/// threads does not repeat, so retrying eliminates that flake without
/// weakening the guarantee.
fn assert_eventually_alloc_free(what: &str, mut region: impl FnMut()) {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocations();
        region();
        let delta = allocations() - before;
        best = best.min(delta);
        if best == 0 {
            return;
        }
    }
    panic!("{what} allocated on the hot path ({best} allocations at best)");
}

#[test]
fn oblivious_routing_kernel_is_allocation_free_after_warmup() {
    let _guard = serial_guard();
    let db = DeBruijn2::new(8);
    let n = db.node_count();
    let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    machine.inject_fault(7); // exercise the drop path too
    let placement = Embedding::identity(n);
    let mut rng = ftdb_tests::seeded_rng(2024);
    let pairs = workload::permutation_pairs(n, &mut rng);

    let mut path = Vec::new();
    // Warm-up: grows the path buffer to its steady-state capacity.
    for &(s, t) in &pairs {
        let _ = route_logical_debruijn_into(&db, &placement, &machine, s, t, &mut path);
    }
    let mut delivered = 0u64;
    assert_eventually_alloc_free("oblivious routing kernel", || {
        for &(s, t) in &pairs {
            if route_logical_debruijn_into(&db, &placement, &machine, s, t, &mut path).is_ok() {
                delivered += 1;
            }
        }
    });
    assert!(delivered > 0);
}

#[test]
fn adaptive_routing_kernel_is_allocation_free_after_warmup() {
    let _guard = serial_guard();
    let db = DeBruijn2::new(7);
    let n = db.node_count();
    let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    machine.inject_fault(3);
    let mut rng = ftdb_tests::seeded_rng(7);
    let pairs = workload::uniform_pairs(n, 128, &mut rng);

    let mut scratch = RouteScratch::new();
    for &(s, t) in &pairs {
        let _ = route_adaptive_into(&machine, s, t, &mut scratch);
    }
    let mut delivered = 0u64;
    assert_eventually_alloc_free("adaptive routing kernel", || {
        for &(s, t) in &pairs {
            if route_adaptive_into(&machine, s, t, &mut scratch).is_ok() {
                delivered += 1;
            }
        }
    });
    assert!(delivered > 0);
}

#[test]
fn workload_driver_allocations_do_not_scale_with_packet_count() {
    let _guard = serial_guard();
    // The sequential driver owns one scratch buffer: routing 4x the packets
    // must cost the same (constant) number of allocations, not 4x.
    let db = DeBruijn2::new(8);
    let n = db.node_count();
    let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    machine.inject_fault(11);
    let placement = Embedding::identity(n);
    let mut rng = ftdb_tests::seeded_rng(99);
    let small = workload::uniform_pairs(n, 256, &mut rng);
    let large: Vec<_> = small
        .iter()
        .cycle()
        .take(small.len() * 4)
        .copied()
        .collect();

    let _ = run_logical_workload(&db, &placement, &machine, &small); // warm caches
    let mut scaled = false;
    for _ in 0..5 {
        let before_small = allocations();
        let _ = run_logical_workload(&db, &placement, &machine, &small);
        let cost_small = allocations() - before_small;
        let before_large = allocations();
        let _ = run_logical_workload(&db, &placement, &machine, &large);
        let cost_large = allocations() - before_large;
        if cost_small == cost_large {
            scaled = true;
            break;
        }
    }
    assert!(
        scaled,
        "per-packet allocation detected: driver cost scales with packet count"
    );
}

#[test]
fn exhaustive_verifier_hot_loop_is_allocation_light() {
    let _guard = serial_guard();
    // The verifier allocates its scratch (kernel buffers, adjacency matrix,
    // enumerator) once per call — the per-fault-set loop itself must not
    // allocate. Checking 4x the fault sets (k=2 vs the same run repeated)
    // must not multiply the allocation count.
    let ft = ftdb_core::FtDeBruijn2::new(5, 2);
    let target = ft.target().graph();
    let host = ft.graph();
    let _ = ftdb_core::verify::verify_exhaustive(target, host, 2, 1);
    let mut ok = false;
    for _ in 0..5 {
        let before_a = allocations();
        let a = ftdb_core::verify::verify_exhaustive(target, host, 1, 1); // 34 sets
        let cost_a = allocations() - before_a;
        let before_b = allocations();
        let b = ftdb_core::verify::verify_exhaustive(target, host, 2, 1); // 561 sets
        let cost_b = allocations() - before_b;
        assert!(a.is_tolerant() && b.is_tolerant());
        // 16x the fault sets; the fixed overhead may differ slightly but
        // not proportionally.
        if cost_b < cost_a + 16 {
            ok = true;
            break;
        }
    }
    assert!(ok, "verifier hot loop allocates per fault set");
}

#[test]
fn congestion_cycle_loop_is_allocation_free_after_warmup() {
    let _guard = serial_guard();
    // The engine allocates while loading the workload; the cycle loop
    // itself (including reset-and-rerun, which is what perf_report
    // measures) must never touch the allocator.
    use ftdb_sim::congestion::{CongestionConfig, CongestionSim};
    let db = DeBruijn2::new(7);
    let n = db.node_count();
    let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
    let mut sim = CongestionSim::new(machine, CongestionConfig::default());
    let placement = Embedding::identity(n);
    let mut rng = ftdb_tests::seeded_rng(512);
    let pairs = workload::uniform_pairs(n, 4 * n, &mut rng);
    sim.load_oblivious(&db, &placement, &pairs);
    // Warm-up run sizes any lazily-grown state.
    let warm = loop {
        let events = sim.step();
        if events.is_idle() {
            break sim.counts();
        }
    };
    assert!(warm.1 > 0, "warm-up must deliver packets");
    let mut delivered = 0;
    assert_eventually_alloc_free("congestion cycle loop", || {
        sim.reset();
        loop {
            let events = sim.step();
            if events.is_idle() {
                break;
            }
        }
        delivered = sim.counts().1;
    });
    assert_eq!(delivered, warm.1);
}

#[test]
fn fault_set_scratch_api_exists_for_callers() {
    let _guard = serial_guard();
    // healthy_iter is the non-allocating accessor the satellites asked for:
    // iterating it must not allocate.
    let faults = FaultSet::from_nodes(1024, [5, 600, 1001]);
    let mut count = 0;
    let mut sum = 0usize;
    assert_eventually_alloc_free("FaultSet::healthy_iter", || {
        count = faults.healthy_iter().count();
        sum = faults.healthy_iter().sum();
    });
    assert_eq!(count, 1021);
    assert!(sum > 0);
}

#[test]
fn implicit_route_state_is_o1_per_packet_not_oh() {
    let _guard = serial_guard();
    // The million-node acceptance bound: per-packet route state must be O(1)
    // for oblivious packets — no materialized path array. Loading the SAME
    // packet count at h = 8 and h = 14 must cost identical implicit route
    // state (it is a packed entry plus a two-word shift register per
    // packet), while the materialized representation pays O(h) per packet.
    use ftdb_sim::congestion::{CongestionConfig, CongestionSim, RouteSource, ShardedSim};
    let packets = 512;
    let single_bytes = |h: usize, route_source: RouteSource| {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(
            machine,
            CongestionConfig {
                route_source,
                ..CongestionConfig::default()
            },
        );
        let mut rng = ftdb_tests::seeded_rng(77);
        let pairs = workload::uniform_pairs(n, packets, &mut rng);
        sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
        sim.route_state_bytes()
    };
    let imp_small = single_bytes(8, RouteSource::Implicit);
    let imp_large = single_bytes(14, RouteSource::Implicit);
    assert_eq!(
        imp_small, imp_large,
        "implicit route state must not scale with h"
    );
    let mat_small = single_bytes(8, RouteSource::Materialized);
    let mat_large = single_bytes(14, RouteSource::Materialized);
    assert!(
        mat_large > mat_small,
        "materialized route state must grow with h ({mat_small} vs {mat_large})"
    );
    assert!(
        2 * imp_large < mat_large,
        "implicit ({imp_large} B) must undercut materialized ({mat_large} B)"
    );
    // The sharded engine carries the same O(1)-per-packet representation in
    // every shard core: equally h-independent.
    let sharded_bytes = |h: usize| {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = ShardedSim::new(machine, CongestionConfig::default(), 4, 1);
        let mut rng = ftdb_tests::seeded_rng(77);
        let pairs = workload::uniform_pairs(n, packets, &mut rng);
        sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
        sim.route_state_bytes()
    };
    assert_eq!(
        sharded_bytes(8),
        sharded_bytes(14),
        "sharded implicit route state must not scale with h"
    );
}

#[test]
fn credit_flow_cycle_loop_is_allocation_free_after_warmup() {
    let _guard = serial_guard();
    // The bounded-buffer engine adds credit counters, a pending-return set
    // and an injection queue to the cycle loop; all of them are sized at
    // construction/load, so reset-and-rerun of a full open-loop run
    // (inject -> credit-gated movement -> drain) must not allocate.
    use ftdb_sim::congestion::{CongestionConfig, CongestionSim, FlowControl};
    use ftdb_sim::workload::{open_loop_injections, InjectionProcess, OpenLoopSpec};
    let db = DeBruijn2::new(6);
    let n = db.node_count();
    let spec = OpenLoopSpec {
        offered_load: 0.15,
        process: InjectionProcess::Bernoulli,
        warmup_cycles: 60,
        measure_cycles: 120,
        drain_cycles: 200,
        seed: 99,
    };
    let injections = open_loop_injections(n, &spec);
    let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    let mut sim = CongestionSim::new(
        machine,
        CongestionConfig {
            flow_control: FlowControl::CreditBased { buffer_depth: 4 },
            ..CongestionConfig::default()
        },
    );
    sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
    // Warm-up run sizes any lazily-grown state.
    sim.run_until(spec.horizon());
    let warm = sim.counts();
    assert!(warm.1 > 0, "warm-up must deliver packets");
    let mut delivered = 0;
    assert_eventually_alloc_free("credit-flow cycle loop", || {
        sim.reset();
        sim.run_until(spec.horizon());
        delivered = sim.counts().1;
    });
    assert_eq!(delivered, warm.1);
    sim.check_credit_conservation()
        .expect("credit conservation after the measured runs");
}
