//! Network comparison: regenerate the paper's "ours vs. Samatham–Pradhan"
//! argument for parameters of your choice, plus the two fault-tolerant
//! shuffle-exchange variants.
//!
//! Run with (defaults shown):
//! ```text
//! cargo run -p ftdb-examples --bin network_comparison -- 4 2
//! ```
//! where the arguments are `h` and `k` for the base-2 target `B(2,h)`.

use ftdb_analysis::comparison::{
    base2_table, render_comparison, render_shuffle_exchange, shuffle_exchange_table,
};
use ftdb_core::baseline::SpBaseline;

fn main() {
    println!(
        "{}\n",
        ftdb_examples::section("Degree cost of fault tolerance: paper bounds vs measured")
    );
    let mut args = std::env::args().skip(1);
    let h: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    println!("Comparing fault-tolerant constructions for B(2,{h}) tolerating {k} faults\n");

    let sp = SpBaseline::new(2, h, k);
    println!("target nodes             : {}", sp.target_nodes());
    println!(
        "ours (Bruck-Cypher-Ho)   : {} nodes, degree <= {}",
        sp.target_nodes() + k as u128,
        4 * k + 4
    );
    println!(
        "Samatham-Pradhan baseline: {} nodes, degree {} (a {}x node overhead)",
        sp.nodes(),
        sp.quoted_degree(),
        sp.redundancy_ratio().round()
    );

    println!("\nFull sweep around the chosen parameters:\n");
    let rows = base2_table(
        &[h.saturating_sub(1).max(3), h, h + 2],
        &[1, k, k + 2],
        1 << 14,
    );
    println!("{}", render_comparison("base-2 comparison", &rows).render());

    let se_rows = shuffle_exchange_table(&[(h, 1), (h, k)], 6);
    println!("{}", render_shuffle_exchange(&se_rows).render());
}
