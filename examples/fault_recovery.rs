//! Fault recovery under load: run an Ascend-class all-reduce on a
//! shuffle-exchange machine, watch it stall when a processor dies without
//! spares, then watch the fault-tolerant machine absorb the same failure.
//!
//! Run with:
//! ```text
//! cargo run -p ftdb-examples --bin fault_recovery
//! ```

use ftdb_core::{FaultSet, FtShuffleExchange};
use ftdb_graph::Embedding;
use ftdb_sim::ascend_descend::{allreduce_hypercube, allreduce_shuffle_exchange};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::workload;
use ftdb_topology::ShuffleExchange;

fn main() {
    println!(
        "{}\n",
        ftdb_examples::section(
            "Fault recovery: Ascend all-reduce before and after reconfiguration"
        )
    );
    let h = 5; // 32 logical processors
    let k = 2; // survive up to two failures
    let se = ShuffleExchange::new(h);
    let n = se.node_count();
    let values = workload::index_values(n);

    // Reference: the hypercube runs the Ascend all-reduce in h steps.
    let reference = allreduce_hypercube(h, &values);
    println!(
        "hypercube reference     : {} steps, total = {}",
        reference.steps, reference.values[0]
    );

    // Healthy shuffle-exchange machine: 2h steps (the classic 2x emulation).
    let healthy = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
    let identity = Embedding::identity(n);
    let out = allreduce_shuffle_exchange(&se, &identity, &healthy, &values)
        .expect("healthy run completes");
    println!(
        "SE, healthy, no spares  : {} steps (slowdown {:.1}x)",
        out.steps,
        out.slowdown_vs_hypercube(h)
    );

    // Processor 9 dies. Without spares the algorithm cannot even start its
    // first exchange phase involving that node.
    let mut broken = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
    broken.inject_fault(9);
    match allreduce_shuffle_exchange(&se, &identity, &broken, &values) {
        Ok(_) => unreachable!("a faulty node must stall the Ascend run"),
        Err(e) => println!("SE, node 9 dead         : STALLED ({e})"),
    }

    // The fault-tolerant machine: physical topology B^k(2,h), logical SE
    // found through the de Bruijn containment + rank reconfiguration.
    let ft = FtShuffleExchange::new(h, k).expect("SE ⊆ DB embedding exists for this h");
    let faults = FaultSet::from_nodes(ft.node_count(), [9, 21]);
    let placement = ft
        .reconfigure_verified(&faults)
        .expect("up to k faults are always absorbed");
    let machine = PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
    let out = allreduce_shuffle_exchange(&se, &placement, &machine, &values)
        .expect("reconfigured machine completes");
    println!(
        "B^{k}(2,{h}), nodes 9 & 21 dead: {} steps (slowdown {:.1}x) — full speed restored",
        out.steps,
        out.slowdown_vs_hypercube(h)
    );
    assert_eq!(out.values[0], reference.values[0]);
}
