//! Shared helpers for the runnable examples (currently none).
