//! Shared helpers for the runnable examples.
//!
//! The example binaries live directly in this directory and are declared as
//! explicit `[[bin]]` targets in `Cargo.toml`; run any of them with
//! `cargo run -p ftdb-examples --bin <name>` where `<name>` is one of
//! `quickstart`, `fault_recovery`, `routing_under_faults`,
//! `network_comparison`, `bus_architecture`, `congestion_recovery` or
//! `load_sweep`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders the underlined title banner each example binary prints first.
pub fn section(title: &str) -> String {
    format!("{title}\n{}", "-".repeat(title.len()))
}

#[cfg(test)]
mod tests {
    #[test]
    fn section_underlines_to_title_width() {
        let s = super::section("abc");
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some("abc"));
        assert_eq!(lines.next(), Some("---"));
    }
}
