//! Cycle-level congestion and online fault recovery: run the four canonical
//! traffic patterns through the congestion engine on `B(2,h)`, then kill
//! processors mid-run on the fault-tolerant `B^k(2,h)` and watch the
//! machine reconfigure and drain — the time-domain companion to
//! `routing_under_faults`.
//!
//! Run with (defaults shown):
//! ```text
//! cargo run -p ftdb-examples --bin congestion_recovery -- 6 2 3
//! ```
//! where the arguments are `h` (network size `2^h`), `k` (faults to inject
//! mid-run) and the cycle at which they strike.

use ftdb_core::FtDeBruijn2;
use ftdb_graph::Embedding;
use ftdb_sim::congestion::{run_recovery, CongestionConfig, CongestionSim, FaultResponse};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::workload;
use ftdb_topology::DeBruijn2;
use rand::SeedableRng;

fn main() {
    println!(
        "{}\n",
        ftdb_examples::section("Cycle-level congestion and online fault recovery")
    );
    let mut args = std::env::args().skip(1);
    let h: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let fault_cycle: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let placement = Embedding::identity(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);

    println!("congestion on a healthy B(2,{h}) ({n} nodes), one flit per link per cycle:\n");
    let workloads: Vec<(&str, Vec<(usize, usize)>)> = vec![
        ("permutation", workload::permutation_pairs(n, &mut rng)),
        ("bit-reversal", workload::bit_reversal_pairs(h)),
        ("hot-spot", workload::all_to_one(n, 0)),
        ("uniform 4x", workload::uniform_pairs(n, 4 * n, &mut rng)),
    ];
    println!(
        "{:<14} {:>7} {:>14} {:>14} {:>13} {:>13}",
        "workload", "ports", "cycles(multi)", "cycles(single)", "mean latency", "flits/cycle"
    );
    for (label, pairs) in &workloads {
        let mut cycles = Vec::new();
        let mut multi_report = None;
        for port in [PortModel::MultiPort, PortModel::SinglePort] {
            let machine = PhysicalMachine::new(db.graph().clone(), port);
            let mut sim = CongestionSim::new(machine, CongestionConfig::default());
            sim.load_oblivious(&db, &placement, pairs);
            let report = sim.run();
            cycles.push(report.cycles);
            if port == PortModel::MultiPort {
                multi_report = Some(report);
            }
        }
        let report = multi_report.expect("multi-port run recorded");
        println!(
            "{:<14} {:>7} {:>14} {:>14} {:>13.2} {:>13.2}",
            label,
            "both",
            cycles[0],
            cycles[1],
            report.latency.mean,
            report.flits_per_cycle()
        );
    }

    println!("\nmid-run faults on B^{k}(2,{h}): {k} processors die at cycle {fault_cycle},");
    println!("the runtime reconfigures (reconfigure_verified) and re-routes in flight:\n");
    let ft = FtDeBruijn2::new(h, k);
    let pairs = workload::permutation_pairs(n, &mut rng);
    let schedule: Vec<(u32, usize)> = (0..k)
        .map(|i| (fault_cycle, (i * 11 + 5) % ft.node_count()))
        .collect();
    let outcome = run_recovery(
        &ft,
        &pairs,
        &schedule,
        PortModel::MultiPort,
        CongestionConfig {
            fault_response: FaultResponse::RerouteAdaptive,
            ..CongestionConfig::default()
        },
    )
    .expect("schedule within the fault budget");
    println!(
        "fault cycle {}  total cycles {}  drain (recovery) cycles {}",
        outcome.fault_cycle, outcome.report.cycles, outcome.drain_cycles
    );
    println!(
        "delivered {}  lost with dead processors {}  re-routed in flight {}",
        outcome.report.delivered, outcome.lost_on_dead_nodes, outcome.rerouted
    );
    assert_eq!(
        outcome.report.delivered + outcome.lost_on_dead_nodes,
        n as u64,
        "every packet not hosted on a dying processor must be delivered"
    );
    println!("\nEvery surviving packet was delivered: the fault-tolerant machine turns a");
    println!("mid-run fault into a bounded latency blip instead of lost traffic.");
}
