//! Quickstart: build a fault-tolerant de Bruijn network, kill two nodes,
//! reconfigure, and check that a healthy copy of the target survives.
//!
//! Run with:
//! ```text
//! cargo run -p ftdb-examples --bin quickstart
//! ```

use ftdb_core::{FaultSet, FtDeBruijn2};
use ftdb_graph::render::summary_line;

fn main() {
    println!(
        "{}\n",
        ftdb_examples::section("Quickstart: survive k faults on a de Bruijn machine")
    );
    // Target: the 64-node de Bruijn graph B(2,6). We want to survive any
    // k = 2 node failures.
    let h = 6;
    let k = 2;
    let ft = FtDeBruijn2::new(h, k);

    println!("target  : {}", summary_line(ft.target().graph()));
    println!("ft graph: {}", summary_line(ft.graph()));
    println!(
        "spares  : {}   degree bound: 4k+4 = {}",
        k,
        ft.degree_bound()
    );

    // Two arbitrary processors fail.
    let faults = FaultSet::from_nodes(ft.node_count(), [13, 40]);
    println!("\nfaults  : {:?}", faults.iter().collect::<Vec<_>>());

    // Reconfigure: logical de Bruijn node x is assigned to the (x+1)-st
    // healthy physical node. The embedding is verified edge by edge.
    let phi = ft
        .reconfigure_verified(&faults)
        .expect("B^k(2,h) tolerates any k faults (Theorem 1)");

    // Show the displaced part of the relabelling (everything below the first
    // fault keeps its identity mapping).
    println!("\nrelabelling (only displaced nodes shown):");
    for row in ftdb_core::reconfig::relabel_table(&phi) {
        if row.displacement > 0 {
            println!(
                "  logical {:>2} ({}) -> physical {:>2}   (displacement {})",
                row.logical,
                ft.target().label(row.logical),
                row.physical,
                row.displacement
            );
        }
    }

    let spares = ftdb_core::reconfig::unused_spares(&phi, &faults);
    println!("\nunused healthy spares: {spares:?}");
    println!("every target edge survives: yes (verified)");
}
