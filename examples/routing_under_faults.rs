//! Routing under faults: push a random permutation workload through a
//! de Bruijn machine and compare three operating modes — healthy, faulted
//! without spares, and faulted with the fault-tolerant construction after
//! reconfiguration.
//!
//! Run with (defaults shown):
//! ```text
//! cargo run -p ftdb-examples --bin routing_under_faults -- 7 3
//! ```
//! where the arguments are `h` (network size `2^h`) and `k` (faults).

use ftdb_core::{FaultSet, FtDeBruijn2};
use ftdb_graph::Embedding;
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::metrics::RoutingStats;
use ftdb_sim::routing::{run_adaptive_workload, run_logical_workload};
use ftdb_sim::workload;
use ftdb_topology::DeBruijn2;
use rand::SeedableRng;

fn print_stats(label: &str, stats: &RoutingStats) {
    println!(
        "{label:<46} delivered {:>4}  dropped {:>4}  ratio {:>5.2}  mean hops {:>5.2}  max hops {}",
        stats.delivered,
        stats.dropped,
        stats.delivery_ratio(),
        stats.mean_hops(),
        stats.max_hops
    );
}

fn main() {
    println!(
        "{}\n",
        ftdb_examples::section("Packet routing on healthy, faulty and reconfigured machines")
    );
    let mut args = std::env::args().skip(1);
    let h: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF7DB);
    let pairs = workload::permutation_pairs(n, &mut rng);
    println!(
        "oblivious de Bruijn routing of a random permutation on 2^{h} = {n} nodes, {k} faults\n"
    );

    // Healthy machine.
    let healthy = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    print_stats(
        "plain B(2,h), healthy",
        &run_logical_workload(&db, &Embedding::identity(n), &healthy, &pairs),
    );

    // k faults, no spares: oblivious routing loses packets, adaptive routing
    // saves some of them but cannot serve faulty endpoints.
    let faults = FaultSet::random(n, k, &mut rng).expect("k within node count");
    let faulted =
        PhysicalMachine::with_faults(db.graph().clone(), faults.clone(), PortModel::MultiPort);
    print_stats(
        "plain B(2,h), k faults, oblivious routing",
        &run_logical_workload(&db, &Embedding::identity(n), &faulted, &pairs),
    );
    print_stats(
        "plain B(2,h), k faults, adaptive rerouting",
        &run_adaptive_workload(&faulted, &pairs),
    );

    // The fault-tolerant machine, reconfigured around k faults.
    let ft = FtDeBruijn2::new(h, k);
    let ft_faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
    let placement = ft
        .reconfigure_verified(&ft_faults)
        .expect("Theorem 1: any k faults are tolerated");
    let machine = PhysicalMachine::with_faults(ft.graph().clone(), ft_faults, PortModel::MultiPort);
    print_stats(
        "B^k(2,h), k faults, reconfigured + oblivious",
        &run_logical_workload(&db, &placement, &machine, &pairs),
    );

    println!("\nThe fault-tolerant machine delivers the full permutation at the original");
    println!("hop count; the unprotected machine drops packets (oblivious) or pays extra");
    println!("latency and still cannot serve the faulty endpoints (adaptive).");
}
