//! Latency–throughput curves under bounded-buffer credit flow control: an
//! open-loop offered-load sweep on the faulted, reconfigured `B^1(2,h)`.
//!
//! Each source injects a Bernoulli stream at the offered load for a warm-up
//! plus a measurement window, then the network drains. With infinite
//! buffers the delivered throughput climbs to saturation and *plateaus*;
//! with bounded buffers and credit flow control it *rolls over* past
//! saturation — tree saturation and head-of-line blocking eat into the
//! delivered rate, and at depth 1 the de Bruijn shift cycles can fill into
//! a genuine buffer deadlock (reported, not spun on).
//!
//! Run with (defaults shown):
//! ```text
//! cargo run -p ftdb-examples --bin load_sweep -- 8 [threads]
//! ```
//! where the arguments are `h` (logical network size `2^h`) and the
//! worker count for the parallel sweep harness (default: the machine's
//! available parallelism; the output is byte-identical for any value).

use ftdb_analysis::sim_experiments::{render_sim5, sim5_load_sweep_parallel, SweepScenario};
use ftdb_sim::congestion::FlowControl;
use ftdb_sim::machine::PortModel;

fn main() {
    println!(
        "{}\n",
        ftdb_examples::section(
            "Offered-load sweeps: saturation collapse under credit flow control"
        )
    );
    let mut args = std::env::args().skip(1);
    let h: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    // A malformed threads argument is a hard error, matching the
    // `--threads` validation of the experiments/perf_report binaries —
    // silently falling back would only show up as surprising wall-clock.
    let threads: usize = match args.next() {
        Some(raw) => match raw.parse() {
            Ok(t) if t >= 1 => t,
            _ => {
                eprintln!("load_sweep: threads must be a positive integer, got {raw:?}");
                eprintln!("usage: load_sweep [h] [threads]");
                std::process::exit(2);
            }
        },
        None => std::thread::available_parallelism().map_or(1, |p| p.get()),
    };
    let seed = 0xF7DB;
    let loads = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 0.95];

    let mut peak_vs_end: Vec<(String, f64, f64)> = Vec::new();
    for (label, flow) in [
        ("infinite buffers".to_string(), FlowControl::Infinite),
        (
            "credit, depth 4".to_string(),
            FlowControl::CreditBased { buffer_depth: 4 },
        ),
        (
            "credit, depth 2".to_string(),
            FlowControl::CreditBased { buffer_depth: 2 },
        ),
        (
            "credit, depth 1".to_string(),
            FlowControl::CreditBased { buffer_depth: 1 },
        ),
    ] {
        let scenario = SweepScenario {
            h,
            k: 1,
            fault_count: 1,
            port: PortModel::MultiPort,
            flow,
        };
        let points = sim5_load_sweep_parallel(&scenario, &loads, seed, threads);
        let title = format!("faulted B^1(2,{h}) (1 fault, reconfigured), multi-port, {label}");
        println!("{}", render_sim5(title, &points).render());
        let peak = points.iter().map(|p| p.throughput).fold(0.0, f64::max);
        let end = points.last().expect("nonempty sweep").throughput;
        peak_vs_end.push((label, peak, end));
    }

    println!("saturation behaviour (delivered throughput, packets/node/cycle):\n");
    println!(
        "{:<20} {:>8} {:>12}  shape",
        "flow control", "peak", "at max load"
    );
    for (label, peak, end) in &peak_vs_end {
        let shape = if *peak < 0.01 {
            "deadlocks before saturating"
        } else if *end < 0.9 * peak {
            "rolls over past saturation"
        } else {
            "plateaus"
        };
        println!("{label:<20} {peak:>8.4} {end:>12.4}  {shape}");
    }
    println!(
        "\nInfinite buffers hide saturation collapse; bounded buffers with credit\n\
         flow control reproduce it — the shallower the buffers, the earlier and\n\
         harder the collapse, down to outright buffer deadlock at depth 1\n\
         (fixed-length digit-shift routes wrap the de Bruijn shift cycles, and\n\
         store-and-forward credit loops have no escape path). Virtual channels\n\
         (ROADMAP) are the classic fix."
    );
}
