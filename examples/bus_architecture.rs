//! The Section V bus architecture: build the bus implementation of
//! `B^k(2,h)`, inspect its bus table and bus-degree, tolerate a bus fault,
//! and reproduce the bus timing trade-off.
//!
//! Run with:
//! ```text
//! cargo run -p ftdb-examples --bin bus_architecture
//! ```

use ftdb_core::{BusArchitecture, FtDeBruijn2};
use ftdb_sim::bus_model::{bus_slowdown, bus_timing_table};
use ftdb_sim::machine::PortModel;

fn main() {
    println!(
        "{}\n",
        ftdb_examples::section(
            "Section V bus implementation of the fault-tolerant de Bruijn graph"
        )
    );
    let h = 3;
    let k = 1;
    let ft = FtDeBruijn2::new(h, k);
    let arch = BusArchitecture::from_ft(&ft);

    println!(
        "bus implementation of B^{k}(2,{h}): {} nodes, {} buses, bus-degree <= 2k+3 = {}",
        arch.node_count(),
        arch.buses().len(),
        arch.degree_bound()
    );
    println!("\nbus table (owner : block of 2k+2 consecutive nodes):");
    for bus in arch.buses() {
        println!("  bus {:>2} : {:?}", bus.owner, bus.members);
    }
    println!("\nmeasured maximum bus-degree: {}", arch.max_bus_degree());

    // Point-to-point connectivity is fully preserved.
    assert!(ftdb_graph::properties::same_edge_set(
        &arch.implied_graph(),
        ft.graph()
    ));
    println!("bus-implied connectivity equals B^{k}(2,{h}): yes");

    // A bus fault is charged to its owner and absorbed by the spare.
    let faulty_bus = 4;
    let faults = arch.bus_faults_to_node_faults([faulty_bus]);
    let phi = ft
        .reconfigure_verified(&faults)
        .expect("a single bus fault is absorbed");
    println!(
        "\nbus {faulty_bus} fails -> node {faulty_bus} treated as faulty -> logical node {faulty_bus} now hosted at physical node {}",
        phi.apply(faulty_bus)
    );

    // The timing trade-off of Section V.
    println!("\nbus timing (slots per superstep, every node sends d distinct values):");
    for row in bus_timing_table(&[1, 2, 4]) {
        println!(
            "  d = {}: p2p multi-port {}, p2p single-port {}, bus {}  (bus vs multi-port {:.1}x, vs single-port {:.1}x)",
            row.fanout,
            row.p2p_multi_port,
            row.p2p_single_port,
            row.bus,
            row.slowdown_vs_multi_port,
            row.slowdown_vs_single_port
        );
    }
    println!(
        "\nwith two-port processors the bus costs {:.0}x; with single-port processors it costs {:.0}x",
        bus_slowdown(PortModel::MultiPort, 2),
        bus_slowdown(PortModel::SinglePort, 2)
    );
}
