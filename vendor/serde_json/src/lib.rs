//! Minimal vendored subset of `serde_json`: the [`Value`] tree, the
//! [`json!`] object/array macro, and compact [`Display`] rendering.
//!
//! There is no serde integration — values are built explicitly via
//! [`json!`] and the [`ToJson`] conversions, which is all the workspace's
//! JSON export paths need.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::{self, Display};

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, printed without a trailing `.0` for
    /// integral values).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object with sorted keys (BTreeMap keeps output deterministic).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The array backing this value, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number backing this value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean backing this value, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice backing this value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object backing this value, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Shared `null` returned when indexing misses, matching serde_json's
/// behaviour of yielding `Value::Null` instead of panicking.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literal; serde_json refuses to
                    // emit them, a Display impl can only degrade to null.
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => {
                let mut buf = String::new();
                escape_into(&mut buf, s);
                write!(f, "{buf}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::new();
                    escape_into(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Conversion into [`Value`], implemented for the types the workspace
/// feeds through [`json!`] (including references, since `json!` arguments
/// are usually borrowed struct fields).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

// Numbers are stored as f64 (like JavaScript): integers above 2^53 lose
// precision. The workspace's tables stay far below that.
macro_rules! impl_to_json_number {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

/// Converts any [`ToJson`] value (used by the [`json!`] macro).
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// A parse error: what went wrong and at which byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where it was detected.
    pub offset: usize,
}

impl Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`] — the inverse of the `Display`
/// rendering above, added so the workspace can *read back* the reports it
/// writes (`perf_report --compare` loads a committed baseline). Supports
/// the full JSON grammar except `\uXXXX` surrogate pairs (the workspace
/// never emits non-BMP escapes).
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character: `pos` only ever advances
                    // past complete characters or ASCII bytes, so it is
                    // always a char boundary of the original &str.
                    let c = self.input[self.pos..]
                        .chars()
                        .next()
                        .expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Builds a [`Value`] from an object/array/scalar literal, mirroring the
/// subset of serde_json's `json!` grammar the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert(($key).to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(map)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn object_macro_and_indexing() {
        let rows = vec![vec!["1".to_string()], vec!["2".to_string()]];
        let v = json!({
            "title": "demo",
            "rows": rows,
            "n": 3usize,
        });
        assert_eq!(v["title"], "demo");
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["rows"][0][0], "1");
    }

    #[test]
    fn display_is_compact_json() {
        let v = json!({"b": 2usize, "a": "x\"y"});
        assert_eq!(v.to_string(), r#"{"a":"x\"y","b":2}"#);
        assert_eq!(json!([1usize, 2usize]).to_string(), "[1,2]");
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn from_str_round_trips_rendered_values() {
        let v = json!({
            "name": "suite \"quoted\"",
            "ns_per_item": 25.7,
            "count": 3usize,
            "nested": json!({"flag": true, "none": json!(null)}),
            "items": json!([1usize, 2.5, "x"]),
        });
        let parsed = super::from_str(&v.to_string()).expect("round trip parses");
        assert_eq!(parsed, v);
        assert_eq!(parsed["ns_per_item"].as_f64(), Some(25.7));
        assert_eq!(parsed["nested"]["flag"].as_bool(), Some(true));
    }

    #[test]
    fn from_str_accepts_whitespace_escapes_and_negatives() {
        let parsed =
            super::from_str(" { \"a\" : [ -1.5e2 , \"\\n\\t\\u0041\" ] ,\n \"b\" : false } ")
                .expect("parses");
        assert_eq!(parsed["a"][0].as_f64(), Some(-150.0));
        assert_eq!(parsed["a"][1], "\n\tA");
        assert_eq!(parsed["b"].as_bool(), Some(false));
    }

    #[test]
    fn from_str_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(super::from_str(bad).is_err(), "{bad:?} should not parse");
        }
        let err = super::from_str("{\"a\": nope}").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }
}
