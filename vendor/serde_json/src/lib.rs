//! Minimal vendored subset of `serde_json`: the [`Value`] tree, the
//! [`json!`] object/array macro, and compact [`Display`] rendering.
//!
//! There is no serde integration — values are built explicitly via
//! [`json!`] and the [`ToJson`] conversions, which is all the workspace's
//! JSON export paths need.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::{self, Display};

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, printed without a trailing `.0` for
    /// integral values).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object with sorted keys (BTreeMap keeps output deterministic).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The array backing this value, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice backing this value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object backing this value, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Shared `null` returned when indexing misses, matching serde_json's
/// behaviour of yielding `Value::Null` instead of panicking.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literal; serde_json refuses to
                    // emit them, a Display impl can only degrade to null.
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => {
                let mut buf = String::new();
                escape_into(&mut buf, s);
                write!(f, "{buf}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::new();
                    escape_into(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Conversion into [`Value`], implemented for the types the workspace
/// feeds through [`json!`] (including references, since `json!` arguments
/// are usually borrowed struct fields).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

// Numbers are stored as f64 (like JavaScript): integers above 2^53 lose
// precision. The workspace's tables stay far below that.
macro_rules! impl_to_json_number {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

/// Converts any [`ToJson`] value (used by the [`json!`] macro).
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Builds a [`Value`] from an object/array/scalar literal, mirroring the
/// subset of serde_json's `json!` grammar the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert(($key).to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(map)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn object_macro_and_indexing() {
        let rows = vec![vec!["1".to_string()], vec!["2".to_string()]];
        let v = json!({
            "title": "demo",
            "rows": rows,
            "n": 3usize,
        });
        assert_eq!(v["title"], "demo");
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["rows"][0][0], "1");
    }

    #[test]
    fn display_is_compact_json() {
        let v = json!({"b": 2usize, "a": "x\"y"});
        assert_eq!(v.to_string(), r#"{"a":"x\"y","b":2}"#);
        assert_eq!(json!([1usize, 2usize]).to_string(), "[1,2]");
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }
}
