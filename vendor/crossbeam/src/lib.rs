//! Minimal vendored subset of the `crossbeam` scoped-thread API, implemented
//! on top of `std::thread::scope` (stable since Rust 1.63).
//!
//! Only the surface the workspace uses is provided: [`scope`] with
//! [`Scope::spawn`], where the spawned closure receives a `&Scope` so nested
//! spawns are possible, and the scope result is `Err` if any spawned thread
//! panicked — matching `crossbeam::thread::scope` semantics.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// The error half of a scope result: the payload of the first panic.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to every spawned thread.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle so it
    /// can spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Creates a scope in which threads borrowing from the environment can be
/// spawned. Joins all spawned threads before returning; if any of them (or
/// the closure itself) panicked, returns the panic payload as `Err`.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Namespace alias matching `crossbeam::thread::scope`.
pub mod thread {
    pub use super::{scope, PanicPayload, Scope};
}

pub mod channel;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panicking_worker_surfaces_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawns_work() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
