//! Minimal vendored subset of `crossbeam::channel`: an unbounded MPSC
//! channel implemented over `std::sync::mpsc`.
//!
//! Only the surface the workspace uses is provided — [`unbounded`],
//! cloneable [`Sender`]s, and a [`Receiver`] with `recv`/`try_iter` — which
//! is what the sharded congestion engine needs to ship boundary batches
//! from scoped worker threads back to the merging driver at each cycle
//! barrier. Semantics match crossbeam's for this subset: senders can be
//! cloned across threads, `recv` blocks until a message or disconnection,
//! and `try_iter` drains without blocking.

use std::sync::mpsc;

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// The sending half; clone one per worker thread.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message; errors only if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// The receiving half.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Drains every message currently queued without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        self.inner.try_iter()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn cloned_senders_feed_one_receiver_across_threads() {
        let (tx, rx) = super::unbounded::<usize>();
        let result = crate::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
        });
        assert!(result.is_ok());
        drop(tx);
        let mut got: Vec<usize> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_errors_once_senders_are_gone() {
        let (tx, rx) = super::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(super::RecvError));
    }
}
