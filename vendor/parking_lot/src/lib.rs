//! Minimal vendored subset of the `parking_lot` API over `std::sync`.
//!
//! Provides [`Mutex`] and [`RwLock`] with parking_lot's signatures: `lock()`
//! returns the guard directly (poisoning is absorbed — a poisoned std lock
//! simply yields its inner data, which matches parking_lot's behaviour of
//! not poisoning at all).

#![forbid(unsafe_code)]

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
