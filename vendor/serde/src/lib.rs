//! Minimal vendored stand-in for `serde`.
//!
//! The workspace only uses `#[derive(serde::Serialize)]` as an annotation;
//! nothing consumes the derived impls (JSON export goes through explicit
//! `serde_json::json!` construction). This proc-macro crate therefore
//! provides a no-op derive so the annotations compile without the real
//! serde dependency.

use proc_macro::TokenStream;

/// No-op replacement for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
