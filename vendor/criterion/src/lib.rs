//! Minimal vendored subset of the `criterion` benchmarking API.
//!
//! Implements the surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `measurement_time` /
//! `warm_up_time` / `sample_size`, `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — as a small but functional wall-clock harness: each benchmark is
//! warmed up, then timed over an adaptively chosen iteration count, and the
//! mean ns/iter is printed in a `cargo bench`-style line.
//!
//! Measurement windows are capped (see [`MAX_MEASUREMENT`]) so a full
//! `cargo bench` sweep stays fast; this is a stub for environments without
//! registry access, not a statistics engine.

#![forbid(unsafe_code)]
// Wall-clock timing is this crate's entire purpose; the workspace-wide
// `Instant::now` ban (clippy.toml) targets simulation code, not the harness.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper bound applied to requested measurement windows.
pub const MAX_MEASUREMENT: Duration = Duration::from_millis(200);
/// Upper bound applied to requested warm-up windows.
pub const MAX_WARM_UP: Duration = Duration::from_millis(50);

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new<F: Into<String>, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Drives timed iterations of a benchmark body.
pub struct Bencher {
    measurement: Duration,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `body`, choosing the iteration count to fill the measurement
    /// window, and records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Calibration: time a single call to size the batch.
        let start = Instant::now();
        black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        let total = start.elapsed();
        self.last_ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement: Duration,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target measurement window (capped at [`MAX_MEASUREMENT`]).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement = time.min(MAX_MEASUREMENT);
        self
    }

    /// Sets the warm-up window (capped at [`MAX_WARM_UP`]).
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up = time.min(MAX_WARM_UP);
        self
    }

    /// Accepted for API compatibility; the stub sizes batches adaptively.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `body` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut body: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().render());
        run_one(&full, self.measurement, self.warm_up, |b| body(b));
        self
    }

    /// Benchmarks `body` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        run_one(&full, self.measurement, self.warm_up, |b| body(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Throughput declaration, accepted for API compatibility.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(100),
            warm_up: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Opens a settings-sharing group of benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let (measurement, warm_up) = (self.measurement, self.warm_up);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement,
            warm_up,
        }
    }

    /// Benchmarks `body` under `name` with default settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        run_one(name, self.measurement, self.warm_up, |b| body(b));
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    measurement: Duration,
    warm_up: Duration,
    mut body: F,
) {
    let mut bencher = Bencher {
        measurement: warm_up.min(MAX_WARM_UP),
        last_ns_per_iter: 0.0,
    };
    body(&mut bencher); // warm-up pass
    bencher.measurement = measurement.min(MAX_MEASUREMENT);
    body(&mut bencher);
    println!(
        "bench: {name:<60} {:>14.1} ns/iter",
        bencher.last_ns_per_iter
    );
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// criterion's macro of the same name. The optional `config = ..` form is
/// accepted and its expression evaluated for side effects only.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("push", |b| b.iter(|| vec![1u8; 16].len()));
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut criterion = Criterion::default();
        tiny_bench(&mut criterion);
        criterion.bench_function("free_standing", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("h6_k2").render(), "h6_k2");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
