//! Minimal vendored subset of the `proptest` API.
//!
//! Provides the [`proptest!`] macro (with `#![proptest_config(..)]` support
//! and `ref` bindings), `prop_assert*` macros, [`ProptestConfig`], and the
//! [`Strategy`] implementations the workspace uses: integer ranges plus
//! [`collection::vec`] and [`collection::btree_set`].
//!
//! Unlike real proptest there is no shrinking: each test runs `cases`
//! deterministic iterations (seeded from the test name), and a failing case
//! panics with the sampled arguments left to the assertion message. That is
//! enough to make the workspace's property suites meaningful and fully
//! reproducible without a registry dependency.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random values for one property test run.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named property test.
#[doc(hidden)]
pub fn __test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name gives a stable per-test seed.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// A value generator. The subset here samples directly without shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(usize, u64, u32, u16, u8, i64, i32);

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets with a size drawn uniformly from `size`.
    /// If the element domain is too small to reach the drawn size, the set
    /// is returned at its maximum reachable size (mirroring proptest, which
    /// gives up after a bounded number of rejects).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.random_range(self.size.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 10 * (target + 1) {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The glob-import surface used by the workspace's test modules.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and `name in strategy` / `ref name in
/// strategy` argument bindings.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Expands each `fn` in the body of [`proptest!`] into a case-loop test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $crate::__proptest_bind! { __rng, $($args)* }
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Binds one `proptest!` argument list entry at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident $(,)? ) => {};
    ( $rng:ident, ref $arg:ident in $strategy:expr ) => {
        let $arg = &$crate::Strategy::sample(&($strategy), &mut $rng);
    };
    ( $rng:ident, ref $arg:ident in $strategy:expr, $($rest:tt)* ) => {
        let $arg = &$crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ( $rng:ident, $arg:ident in $strategy:expr ) => {
        let $arg = $crate::Strategy::sample(&($strategy), &mut $rng);
    };
    ( $rng:ident, $arg:ident in $strategy:expr, $($rest:tt)* ) => {
        let $arg = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(a in 3usize..7, b in 0u64..100) {
            prop_assert!((3..7).contains(&a));
            prop_assert!(b < 100);
        }

        #[test]
        fn ref_collections_bind_by_reference(ref v in crate::collection::vec(0usize..10, 1..5),
                                             ref s in crate::collection::btree_set(0usize..50, 2..10)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(s.len() >= 2 && s.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = crate::__test_rng("some::test");
        let mut b = crate::__test_rng("some::test");
        let va = crate::Strategy::sample(&(0usize..1000), &mut a);
        let vb = crate::Strategy::sample(&(0usize..1000), &mut b);
        assert_eq!(va, vb);
    }
}
