//! Minimal vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! exactly the surface the workspace uses: the [`Rng`] core trait, the
//! [`RngExt`] extension trait (`random`, `random_range`), [`SeedableRng`],
//! the deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! a process-local [`rng()`] constructor, and [`seq::SliceRandom`].
//!
//! Determinism matters more than statistical strength here: the workspace
//! uses seeded RNGs to make experiments and property tests reproducible.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit values. Core trait mirrored from `rand`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods on [`Rng`], mirroring `rand`'s generic sampling API.
pub trait RngExt: Rng {
    /// Samples a uniformly random value from a half-open range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value from the "standard" distribution of `T`
    /// (uniform bits for integers, uniform in `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges a value of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly samples from `[0, bound)` without modulo bias (Lemire-style
/// rejection on the widening multiply is overkill here; simple rejection
/// sampling on the top bits keeps the implementation obviously correct).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection sampling: accept values below the largest multiple of bound.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i64: u64, i32: u32);

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: used to expand seeds and as the fallback generator.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state is a fixed point of xoshiro; SplitMix64 never
            // produces four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A cheaply-constructible generator with a fresh seed per call site,
    /// returned by [`crate::rng()`][super::super::rng].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a fresh, non-deterministically seeded generator (the `rand` 0.9
/// spelling of `thread_rng()`).
pub fn rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(
        nanos ^ unique.rotate_left(32) ^ 0xA076_1D64_78BD_642F,
    ))
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.random_range(0..5);
            assert!(w < 5);
        }
    }

    #[test]
    fn random_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fresh_rngs_differ() {
        let mut a = super::rng();
        let mut b = super::rng();
        // Two generators created back to back must not produce the same
        // stream (the counter guarantees distinct seeds even within one ns).
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }
}
